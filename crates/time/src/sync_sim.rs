//! Software clock-synchronization simulator (§3.2 background).
//!
//! The paper's externally synchronized clocks assume "local clocks with a
//! bounded drift rate \[that\] can be used to approximate real-time", kept in
//! sync by a software protocol (the references are Cristian's probabilistic
//! clock synchronization and Fetzer/Cristian's external/internal
//! synchronization). This module simulates such an ensemble to answer the
//! question the experiments need answered: *what deviation bound `dev` is
//! achievable in software*, given oscillator drift, resynchronization period
//! and message-delay bounds?
//!
//! The simulation is deterministic (seeded) and entirely virtual-time — no
//! threads, no sleeping. Each slave node performs a Cristian-style exchange
//! with the master every `sync_interval`; between exchanges its offset grows
//! with its drift rate. The reported per-round maxima mirror the Figure 1
//! series, and [`achievable_dev`] gives the bound to feed into
//! [`crate::external::ExternalClock`].

/// Oscillator and protocol parameters for the simulated ensemble.
#[derive(Clone, Debug)]
pub struct SyncSimConfig {
    /// Number of slave nodes (the master is node 0 and defines real time).
    pub nodes: usize,
    /// Maximum oscillator drift, in parts per million. Each node gets a
    /// deterministic drift in `[-max, +max]`.
    pub max_drift_ppm: f64,
    /// Resynchronization period, in seconds of real time.
    pub sync_interval_s: f64,
    /// Number of synchronization rounds to simulate.
    pub rounds: usize,
    /// Minimum one-way message delay (microseconds).
    pub min_delay_us: f64,
    /// Maximum one-way message delay (microseconds).
    pub max_delay_us: f64,
    /// RNG seed (the simulation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SyncSimConfig {
    fn default() -> Self {
        SyncSimConfig {
            nodes: 15,
            max_drift_ppm: 50.0,
            sync_interval_s: 0.1, // the paper's round interval
            rounds: 100,
            min_delay_us: 1.0,
            max_delay_us: 25.0,
            seed: 0x5EED,
        }
    }
}

/// Per-round maxima over all slave nodes (microseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimRound {
    /// Round index.
    pub round: usize,
    /// Largest true clock offset from the master right *before* the round's
    /// correction (drift accumulated since the last round).
    pub max_abs_offset_us: f64,
    /// Largest per-node error bound computed by the protocol
    /// (half round-trip + drift allowance).
    pub max_error_us: f64,
}

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Per-round series (the Figure 1 analogue for software sync).
    pub rounds: Vec<SimRound>,
    /// The deviation bound `dev` (microseconds) that an
    /// [`crate::external::ExternalClock`] built on this ensemble could
    /// honestly advertise: the worst `error + |offset|` seen in any round.
    pub achievable_dev_us: f64,
}

/// SplitMix64 — tiny deterministic RNG so the simulator needs no external
/// dependency.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

struct Node {
    /// Oscillator rate error (seconds of clock per second of real time − 1).
    drift: f64,
    /// Current clock correction such that `local(t) = t·(1+drift) + adj`.
    adj: f64,
    /// Real time of the last resynchronization.
    last_sync_t: f64,
}

impl Node {
    fn local(&self, t: f64) -> f64 {
        t * (1.0 + self.drift) + self.adj
    }

    fn offset(&self, t: f64) -> f64 {
        self.local(t) - t
    }
}

/// Run the simulation.
pub fn simulate(cfg: &SyncSimConfig) -> SimOutcome {
    assert!(cfg.nodes >= 1);
    assert!(cfg.max_delay_us >= cfg.min_delay_us);
    assert!(cfg.min_delay_us >= 0.0);

    let mut rng = SplitMix64(cfg.seed);
    let mut nodes: Vec<Node> = (0..cfg.nodes)
        .map(|_| Node {
            drift: rng.uniform(-cfg.max_drift_ppm, cfg.max_drift_ppm) * 1e-6,
            adj: 0.0,
            last_sync_t: 0.0,
        })
        .collect();

    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut worst = 0.0f64;

    for round in 0..cfg.rounds {
        let t = (round + 1) as f64 * cfg.sync_interval_s;
        let mut max_abs_offset_us = 0.0f64;
        let mut max_error_us = 0.0f64;

        for node in nodes.iter_mut() {
            // True offset accumulated since the last correction.
            let off_us = node.offset(t) * 1e6;
            max_abs_offset_us = max_abs_offset_us.max(off_us.abs());

            // Cristian exchange: request delay d1, reply delay d2 (seconds).
            let d1 = rng.uniform(cfg.min_delay_us, cfg.max_delay_us) * 1e-6;
            let d2 = rng.uniform(cfg.min_delay_us, cfg.max_delay_us) * 1e-6;
            let l0 = node.local(t);
            let master_reading = t + d1; // master clock IS real time
            let l1 = node.local(t + d1 + d2);
            // Midpoint estimate of the local offset, and its error bound.
            let est_offset = (l0 + l1) / 2.0 - master_reading;
            let half_rtt = (l1 - l0) / 2.0;
            // Protocol error bound: half-RTT minus the known minimum delay,
            // plus the drift that can accumulate until the *next* exchange.
            let error_bound = (half_rtt - cfg.min_delay_us * 1e-6)
                + cfg.max_drift_ppm * 1e-6 * cfg.sync_interval_s;
            max_error_us = max_error_us.max(error_bound * 1e6);

            // Step correction: cancel the estimated offset.
            node.adj -= est_offset;
            node.last_sync_t = t;

            // Sanity: the protocol's bound must cover its actual mistake.
            let residual = node.offset(t + d1 + d2).abs();
            debug_assert!(
                residual <= error_bound + 1e-12,
                "estimation mistake {residual} exceeds bound {error_bound}"
            );
        }

        worst = worst.max(max_abs_offset_us + max_error_us);
        rounds.push(SimRound {
            round,
            max_abs_offset_us,
            max_error_us,
        });
    }

    SimOutcome {
        rounds,
        achievable_dev_us: worst,
    }
}

/// Convenience: the `dev` (in **nanoseconds**, ready for
/// [`crate::external::ExternalClock::new`]) achievable under `cfg`.
pub fn achievable_dev(cfg: &SyncSimConfig) -> u64 {
    (simulate(cfg).achievable_dev_us * 1_000.0).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyncSimConfig::default();
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.achievable_dev_us, b.achievable_dev_us);
    }

    #[test]
    fn zero_drift_zero_jitter_synchronizes_perfectly() {
        let cfg = SyncSimConfig {
            nodes: 4,
            max_drift_ppm: 0.0,
            min_delay_us: 5.0,
            max_delay_us: 5.0, // symmetric constant delays: exact estimation
            rounds: 10,
            ..Default::default()
        };
        let out = simulate(&cfg);
        // After the first correction all offsets stay ~0.
        for r in &out.rounds[1..] {
            assert!(r.max_abs_offset_us < 1e-6, "offset {}", r.max_abs_offset_us);
        }
    }

    #[test]
    fn offsets_bounded_by_drift_times_interval_after_first_sync() {
        let cfg = SyncSimConfig::default();
        let out = simulate(&cfg);
        // After the first round, offset = estimation residual + drift·interval.
        // Residual <= half jitter; drift contribution <= 50ppm * 0.1s = 5 µs;
        // jitter (25-1)/2 = 12 µs. Generous bound: 25 µs.
        for r in &out.rounds[1..] {
            assert!(
                r.max_abs_offset_us < 25.0,
                "round {} offset {} too large",
                r.round,
                r.max_abs_offset_us
            );
        }
    }

    #[test]
    fn tighter_sync_gives_smaller_dev() {
        let loose = SyncSimConfig::default();
        let tight = SyncSimConfig {
            max_drift_ppm: 5.0,
            max_delay_us: 3.0,
            ..loose.clone()
        };
        assert!(achievable_dev(&tight) < achievable_dev(&loose));
    }

    #[test]
    fn achievable_dev_covers_every_round() {
        let out = simulate(&SyncSimConfig::default());
        for r in &out.rounds {
            assert!(out.achievable_dev_us + 1e-9 >= r.max_abs_offset_us);
        }
    }
}
