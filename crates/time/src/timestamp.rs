//! The timestamp algebra of Algorithm 1 of the paper.
//!
//! Time-based transactional memory reasons about *uncertain* readings of a
//! global time base. Two timestamps `t1`, `t2` read by different threads may
//! not be totally ordered: with a non-zero clock reading error we may only be
//! able to say that one was *possibly* read later than the other. The paper
//! therefore defines (§2.1, Algorithm 1):
//!
//! * `t1 ≽ t2` — *guaranteed later than or equal*: it is guaranteed that `t2`
//!   was read no later than `t1`. Modeled by [`Timestamp::ge`].
//! * `t1 ≿ t2` — *possibly later than*: defined as `¬(t2 ≽ t1)`. Modeled by
//!   [`Timestamp::possibly_later`] (a provided method, exactly the paper's
//!   definition).
//! * `max(t1, t2)` — any `t3 ≽ max(t1, t2)` is guaranteed later than both.
//!   Modeled by [`Timestamp::join`].
//! * `min(t1, t2)` — any `t3 ≼ min(t1, t2)` is guaranteed earlier than both.
//!   Modeled by [`Timestamp::meet`].
//!
//! The relations obey, for all `t1`, `t2` (tested as properties in this
//! crate):
//!
//! * `t1 ≽ t2  ⟹  ¬(t2 ≿ t1)` is **not** generally true; the paper's
//!   guarantees are `t2 ≽ t1 ⟹ ¬(t1 ≾ t2)` and `t2 ≾ t1 ⟹ ¬(t1 ≼ t2)`,
//!   where `≾`/`≼` are the converses of `≿`/`≽`. In trait terms:
//!   `a.ge(b) ⟹ !a.possibly_earlier_strict(b)` — see the property tests in
//!   `tests/timestamp_laws.rs` for the exact formulations.
//! * For totally ordered time bases (counters, perfectly synchronized
//!   clocks), `ge` degenerates to `>=` and `join`/`meet` to `max`/`min`.

use core::fmt::Debug;

/// A timestamp drawn from some time base, together with the uncertainty-aware
/// comparison operations of Algorithm 1.
///
/// Implementations must be cheap to copy (timestamps are passed by value
/// throughout the STM hot path) and must satisfy the algebraic laws
/// documented on each method.
pub trait Timestamp: Copy + Clone + Debug + PartialEq + Send + Sync + 'static {
    /// The paper's `t1 ≽ t2` ("guaranteed later than or equal"): returns
    /// `true` iff it is guaranteed that `other` was read no later than
    /// `self`.
    ///
    /// Laws:
    /// * reflexive: `t.ge(t)`,
    /// * transitive: `a.ge(b) && b.ge(c) ⟹ a.ge(c)`,
    /// * for timestamps read successively by one thread from its clock,
    ///   later reads are `ge` earlier reads (per-thread monotonicity).
    fn ge(self, other: Self) -> bool;

    /// The paper's `t1 ≿ t2` ("possibly later than"), defined — exactly as in
    /// Algorithm 1 — as `¬(t2 ≽ t1)`.
    ///
    /// `t2.ge(t1)` implies `!t1.possibly_later(t2)`, and `t2.possibly_later(t1)`
    /// implies `!t1.ge(t2)`.
    #[inline]
    fn possibly_later(self, other: Self) -> bool {
        !other.ge(self)
    }

    /// The paper's `max(t1, t2)`: any timestamp guaranteed later than the
    /// result is guaranteed later than both arguments.
    ///
    /// For totally ordered time bases this is the ordinary maximum. For
    /// externally synchronized clocks it may need to *widen* uncertainty
    /// (Algorithm 5 poisons the clock id).
    fn join(self, other: Self) -> Self;

    /// The paper's `min(t1, t2)`: any timestamp guaranteed earlier than the
    /// result is guaranteed earlier than both arguments.
    fn meet(self, other: Self) -> Self;

    /// The immediate predecessor of this timestamp in the time base's
    /// granularity — the `CT − 1` of Algorithm 3 line 29 ("version valid at
    /// least until then"). For a commit at time `t`, the superseded version
    /// remains valid through `t.prior()`.
    fn prior(self) -> Self;

    /// A raw scalar projection of the timestamp, in the time base's native
    /// units, used **only** by measurement and reporting code (never by the
    /// STM algorithm itself): offsets and errors in
    /// [`crate::sync_measure`] are computed on these values.
    fn raw_value(self) -> i128;

    /// The earliest representable timestamp: every timestamp producible by
    /// any clock of the base is `ge` this value. Used as the lower validity
    /// bound of the *initial* version of a freshly created transactional
    /// object ("valid since the beginning of time"), so new objects are
    /// visible to every snapshot.
    fn origin() -> Self;
}

/// Logical (integer) timestamps: the time base is a totally ordered counter
/// or a perfectly synchronized clock. `ge` is ordinary `>=`.
impl Timestamp for u64 {
    #[inline]
    fn ge(self, other: Self) -> bool {
        self >= other
    }

    #[inline]
    fn join(self, other: Self) -> Self {
        self.max(other)
    }

    #[inline]
    fn meet(self, other: Self) -> Self {
        self.min(other)
    }

    #[inline]
    fn prior(self) -> Self {
        self.saturating_sub(1)
    }

    #[inline]
    fn raw_value(self) -> i128 {
        self as i128
    }

    #[inline]
    fn origin() -> Self {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_ge_is_total_order() {
        assert!(5u64.ge(5));
        assert!(6u64.ge(5));
        assert!(!5u64.ge(6));
    }

    #[test]
    fn u64_possibly_later_matches_strict_greater() {
        // For a totally ordered base, "possibly later" is exactly ">".
        assert!(6u64.possibly_later(5));
        assert!(!5u64.possibly_later(5));
        assert!(!4u64.possibly_later(5));
    }

    #[test]
    fn u64_join_meet_are_max_min() {
        assert_eq!(3u64.join(7), 7);
        assert_eq!(3u64.meet(7), 3);
        assert_eq!(9u64.join(9), 9);
    }

    #[test]
    fn u64_prior_saturates_at_zero() {
        assert_eq!(5u64.prior(), 4);
        assert_eq!(0u64.prior(), 0);
    }

    #[test]
    fn paper_implications_hold_for_u64() {
        // t2 ≽ t1 ⟹ ¬(t1 ≿ t2)  and  t2 ≿ t1 ⟹ ¬(t1 ≽ t2)
        for t1 in 0u64..8 {
            for t2 in 0u64..8 {
                if t2.ge(t1) {
                    assert!(!t1.possibly_later(t2), "t1={t1} t2={t2}");
                }
                if t2.possibly_later(t1) {
                    assert!(!t1.ge(t2), "t1={t1} t2={t2}");
                }
            }
        }
    }
}
