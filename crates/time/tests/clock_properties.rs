//! Cross-cutting clock properties every time base must satisfy (the
//! contracts `lsa-stm` relies on, §2.1/§2.4 of the paper), checked uniformly
//! over all implementations.

use lsa_time::counter::{BlockCounter, Gv4Counter, Gv5Counter, SharedCounter};
use lsa_time::external::{ExternalClock, OffsetPolicy};
use lsa_time::hardware::HardwareClock;
use lsa_time::numa::{NumaCounter, NumaModel};
use lsa_time::perfect::PerfectClock;
use lsa_time::{ThreadClock, TimeBase, Timestamp};
use proptest::prelude::*;

/// getTime is monotonic per thread; getNewTS is strictly greater than
/// everything previously returned to the thread, under any interleaving of
/// the two calls.
fn check_thread_contract<B: TimeBase>(tb: &B, pattern: &[bool]) {
    let mut clock = tb.register_thread();
    let mut last: Option<B::Ts> = None;
    for &new_ts in pattern {
        let t = if new_ts {
            clock.get_new_ts()
        } else {
            clock.get_time()
        };
        if let Some(prev) = last {
            assert!(t.ge(prev), "monotonicity violated: {t:?} after {prev:?}");
            if new_ts {
                assert!(
                    t.possibly_later(prev) || !prev.ge(t),
                    "getNewTS must move strictly past {prev:?}, got {t:?}"
                );
            }
        }
        last = Some(t);
    }
}

/// A value read after a cross-thread handshake is `ge` the value published
/// before it (the §2.4 visibility requirement).
fn check_happens_before<B: TimeBase>(tb: &B) {
    let mut main = tb.register_thread();
    let before = main.get_new_ts();
    let observed = std::thread::scope(|s| {
        s.spawn(|| {
            let mut other = tb.register_thread();
            other.get_new_ts()
        })
        .join()
        .unwrap()
    });
    let after = main.get_time();
    assert!(
        observed.ge(before) || !before.ge(observed),
        "cross-thread reading moved backwards: {before:?} then {observed:?}"
    );
    assert!(after.ge(before));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shared_counter_contract(pattern in prop::collection::vec(any::<bool>(), 1..40)) {
        check_thread_contract(&SharedCounter::new(), &pattern);
    }

    #[test]
    fn gv4_counter_contract(pattern in prop::collection::vec(any::<bool>(), 1..40)) {
        check_thread_contract(&Gv4Counter::new(), &pattern);
    }

    // NOTE: Gv5Counter is deliberately absent from this full-chain check:
    // its get_time returns only *published* time, which may lag the
    // thread's own (unpublished) commit timestamps. Its contract — the
    // weaker, correct one — is asserted by lsa_time::conformance in
    // tests/timebase_conformance.rs.

    #[test]
    fn block_counter_contract(
        pattern in prop::collection::vec(any::<bool>(), 1..40),
        block in 1u64..16,
    ) {
        check_thread_contract(&BlockCounter::new(block), &pattern);
    }

    #[test]
    fn perfect_clock_contract(pattern in prop::collection::vec(any::<bool>(), 1..40)) {
        check_thread_contract(&PerfectClock::new(), &pattern);
    }

    #[test]
    fn hardware_clock_contract(pattern in prop::collection::vec(any::<bool>(), 1..20)) {
        check_thread_contract(&HardwareClock::mmtimer_free(), &pattern);
    }

    #[test]
    fn numa_counter_contract(pattern in prop::collection::vec(any::<bool>(), 1..40)) {
        check_thread_contract(&NumaCounter::new(NumaModel::free()), &pattern);
    }

    #[test]
    fn external_clock_contract(
        pattern in prop::collection::vec(any::<bool>(), 1..40),
        dev in 0u64..100_000,
    ) {
        check_thread_contract(
            &ExternalClock::with_policy(dev, OffsetPolicy::Spread),
            &pattern,
        );
    }

    #[test]
    fn external_offsets_always_bounded(dev in 0u64..1_000_000, n in 1usize..32) {
        let tb = ExternalClock::with_policy(dev, OffsetPolicy::Spread);
        for _ in 0..n {
            let h = tb.register_thread();
            prop_assert!(h.offset_ns().unsigned_abs() <= dev);
        }
    }
}

#[test]
fn happens_before_all_bases() {
    check_happens_before(&SharedCounter::new());
    check_happens_before(&Gv4Counter::new());
    check_happens_before(&BlockCounter::default());
    check_happens_before(&PerfectClock::new());
    check_happens_before(&HardwareClock::mmtimer_free());
    check_happens_before(&NumaCounter::new(NumaModel::free()));
}

/// The §2.4 strictness requirement in its exact form: a getNewTS result is
/// strictly greater than a clock reading taken (by the same thread) before
/// the call — for every time base.
#[test]
fn get_new_ts_exceeds_invocation_time() {
    fn check<B: TimeBase>(tb: &B) {
        let mut a = tb.register_thread();
        let mut b = tb.register_thread();
        for _ in 0..200 {
            let before = a.get_time();
            let fresh = b.get_new_ts();
            // `fresh` was acquired after `before` in real time, so `before`
            // must never be guaranteed-later than `fresh`.
            assert!(
                !before.ge(fresh) || fresh.ge(before),
                "an earlier reading claims to dominate a later getNewTS"
            );
        }
    }
    check(&SharedCounter::new());
    check(&Gv4Counter::new());
    check(&Gv5Counter::new());
    check(&BlockCounter::default());
    check(&NumaCounter::new(NumaModel::free()));
    check(&PerfectClock::new());
    check(&HardwareClock::mmtimer_free());
    check(&ExternalClock::with_policy(
        50_000,
        OffsetPolicy::Alternating,
    ));

    // Strong form for u64 bases: strictly greater.
    let tb = PerfectClock::new();
    let mut a = tb.register_thread();
    let mut b = tb.register_thread();
    for _ in 0..200 {
        let before = a.get_time();
        let fresh = b.get_new_ts();
        assert!(
            fresh > before,
            "getNewTS {fresh} must exceed prior reading {before}"
        );
    }
    let tb = SharedCounter::new();
    let mut a = tb.register_thread();
    let mut b = tb.register_thread();
    for _ in 0..200 {
        let before = a.get_time();
        let fresh = b.get_new_ts();
        assert!(fresh > before);
    }
}
