//! The wire client: pipelined framed requests over a small pool of TCP
//! connections, with request-id correlation and lazy reconnect.
//!
//! Each connection ("lane") has one background reader thread that decodes
//! response frames and resolves the matching pending request by id, so any
//! number of requests can be in flight on a lane at once — [`send`]
//! returns a [`PendingReply`] immediately and the caller decides when to
//! wait (blocking [`PendingReply::wait`]) or `await` it on an executor.
//! Lanes are picked round-robin per request; writes hold the lane lock only
//! while the frame hits the socket, so senders on different threads pipeline
//! onto shared lanes without coordinating.
//!
//! When a connection dies (server restart, network error, protocol
//! violation) its pending requests resolve to [`WireError::ConnectionLost`]
//! and the lane reconnects lazily on its next use — callers retry at their
//! own policy.
//!
//! [`send`]: WireClient::send

use crate::frame::{decode_frame, encode_frame, FrameError, ReadBuf};
use crate::tables::{Reply, Request};
use lsa_service::oneshot::{OneshotPool, Receiver, Sender};
use std::collections::HashMap;
use std::future::Future;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::thread::JoinHandle;

/// Transport-level client errors. Application-level outcomes — including
/// [`Reply::Overloaded`] and [`Reply::Error`] — are *values*, not errors:
/// they arrive as normal replies.
#[derive(Debug)]
pub enum WireError {
    /// Connecting or writing failed at the socket level.
    Io(std::io::Error),
    /// The connection died (or the server restarted) before the reply
    /// arrived. The request may or may not have executed — retrying is the
    /// caller's policy decision (transfers are not idempotent!).
    ConnectionLost,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::ConnectionLost => f.write_str("connection lost before reply"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Pending requests of one connection, keyed by request id. `closed` flips
/// when the reader exits, closing the insert/drain race: a sender either
/// lands in the map before the drain (and is cancelled by it) or observes
/// `closed` and fails fast.
struct PendingMap {
    map: HashMap<u64, Sender<Reply>>,
    closed: bool,
}

/// One live connection: the write half plus its reader thread.
struct LaneConn {
    stream: TcpStream,
    pending: Arc<Mutex<PendingMap>>,
    reader: JoinHandle<()>,
}

/// A connection slot; `None` until first use and after a death is noticed.
/// The encode buffer lives with the lane (both are used under the lane
/// lock), so steady-state sends reuse it instead of allocating per request.
struct Lane {
    conn: Option<LaneConn>,
    buf: Vec<u8>,
}

/// A reply that has not arrived yet. Either block on [`wait`](Self::wait)
/// or `await` it (e.g. on `lsa_service::Executor`).
pub struct PendingReply {
    rx: Receiver<Reply>,
}

impl PendingReply {
    /// Block the calling thread until the reply (or connection loss).
    pub fn wait(self) -> Result<Reply, WireError> {
        self.rx.wait().map_err(|_| WireError::ConnectionLost)
    }
}

impl Future for PendingReply {
    type Output = Result<Reply, WireError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.rx)
            .poll(cx)
            .map(|r| r.map_err(|_| WireError::ConnectionLost))
    }
}

/// A pipelined wire client over `lanes` TCP connections.
pub struct WireClient {
    addr: SocketAddr,
    lanes: Vec<Mutex<Lane>>,
    next_id: AtomicU64,
    rr: AtomicUsize,
    /// Pooled reply channels: at steady state a request's pending-reply
    /// correlation reuses a recycled channel allocation.
    replies: OneshotPool<Reply>,
}

/// The shard hint a request travels with: derived from the data it touches
/// so shard-affine engines route co-located keys to the same worker. Pings
/// and whole-table audits have no affinity.
pub fn shard_hint(req: &Request) -> Option<u32> {
    match *req {
        Request::Ping | Request::BankAudit | Request::Stats => None,
        Request::BankTransfer { from, .. } => Some(from),
        Request::Intset { key, .. } | Request::Hashset { key, .. } => {
            Some(key.rem_euclid(1 << 30) as u32)
        }
    }
}

impl WireClient {
    /// Create a client for `addr` with `lanes` connections. Connections are
    /// opened lazily on first use of each lane — the constructor itself
    /// cannot fail, and a server restart heals the same way first use does.
    pub fn connect(addr: impl ToSocketAddrs, lanes: usize) -> std::io::Result<WireClient> {
        assert!(lanes >= 1, "a client needs at least one lane");
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        Ok(WireClient {
            addr,
            lanes: (0..lanes)
                .map(|_| {
                    Mutex::new(Lane {
                        conn: None,
                        buf: Vec::with_capacity(256),
                    })
                })
                .collect(),
            next_id: AtomicU64::new(1),
            rr: AtomicUsize::new(0),
            replies: OneshotPool::new((lanes * 256).max(1024)),
        })
    }

    /// Fire one request without waiting: encodes, writes to a round-robin
    /// lane (reconnecting it if dead), and returns the correlation handle.
    pub fn send(&self, req: &Request) -> Result<PendingReply, WireError> {
        let lane_ix = self.rr.fetch_add(1, Ordering::Relaxed) % self.lanes.len();
        let mut lane = self.lanes[lane_ix].lock().unwrap();

        // Notice a dead connection (reader exited) and clear it.
        if let Some(conn) = &lane.conn {
            if conn.pending.lock().unwrap().closed {
                if let Some(conn) = lane.conn.take() {
                    let _ = conn.reader.join();
                }
            }
        }
        if lane.conn.is_none() {
            lane.conn = Some(open_conn(self.addr)?);
        }
        // Split the lane borrow: the connection and the reusable encode
        // buffer are distinct fields under the same lock.
        let Lane { conn, buf } = &mut *lane;
        let conn = conn.as_mut().expect("lane connected above");

        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = self.replies.channel();
        {
            let mut pending = conn.pending.lock().unwrap();
            if pending.closed {
                return Err(WireError::ConnectionLost);
            }
            pending.map.insert(req_id, tx);
        }
        buf.clear();
        encode_frame(buf, req.opcode(), req_id, shard_hint(req), |b| {
            req.encode_payload(b)
        });
        if let Err(e) = conn.stream.write_all(buf) {
            // The write failed before the request could have been accepted:
            // withdraw the pending entry and tear the lane down so the next
            // send reconnects.
            conn.pending.lock().unwrap().map.remove(&req_id);
            if let Some(conn) = lane.conn.take() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                let _ = conn.reader.join();
            }
            return Err(WireError::Io(e));
        }
        Ok(PendingReply { rx })
    }

    /// Send and block for the reply.
    pub fn call(&self, req: &Request) -> Result<Reply, WireError> {
        self.send(req)?.wait()
    }

    /// Send with bounded retry on transport errors — for idempotent
    /// requests (reads, pings, set ops with known intent) across a server
    /// restart. Non-idempotent requests should use [`call`](Self::call) and
    /// decide for themselves.
    pub fn call_retry(&self, req: &Request, attempts: usize) -> Result<Reply, WireError> {
        let mut last = WireError::ConnectionLost;
        for _ in 0..attempts.max(1) {
            match self.call(req) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    last = e;
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        }
        Err(last)
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        for lane in &self.lanes {
            let mut lane = lane.lock().unwrap();
            if let Some(conn) = lane.conn.take() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                let _ = conn.reader.join();
            }
        }
    }
}

fn open_conn(addr: SocketAddr) -> std::io::Result<LaneConn> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let pending = Arc::new(Mutex::new(PendingMap {
        map: HashMap::new(),
        closed: false,
    }));
    let reader = {
        let stream = stream.try_clone()?;
        let pending = Arc::clone(&pending);
        std::thread::spawn(move || reader_loop(stream, pending))
    };
    Ok(LaneConn {
        stream,
        pending,
        reader,
    })
}

/// Decode response frames and resolve pending requests until the connection
/// dies; then cancel everything still pending (→ `ConnectionLost`).
fn reader_loop(mut stream: TcpStream, pending: Arc<Mutex<PendingMap>>) {
    let mut rb = ReadBuf::new();
    let mut chunk = vec![0u8; 64 * 1024];
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break 'conn,
            Ok(n) => n,
            Err(_) => break 'conn,
        };
        rb.extend(&chunk[..n]);
        loop {
            match decode_frame(rb.window()) {
                Ok(None) => break,
                Ok(Some((frame, consumed))) => {
                    let req_id = frame.header.req_id;
                    let reply = Reply::decode(&frame);
                    rb.consume(consumed);
                    match reply {
                        Ok(reply) => {
                            let tx = pending.lock().unwrap().map.remove(&req_id);
                            if let Some(tx) = tx {
                                tx.send(reply);
                            }
                            // else: reply for a withdrawn request — ignore.
                        }
                        Err(FrameError::BadPayload(_)) => {
                            // Framing is intact but the payload is garbage:
                            // fail this request, keep the stream.
                            pending.lock().unwrap().map.remove(&req_id);
                            // Dropping the sender cancels the waiter.
                        }
                        Err(_) => break 'conn,
                    }
                }
                Err(_) => break 'conn, // unsyncable stream
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let mut p = pending.lock().unwrap();
    p.closed = true;
    p.map.clear(); // drops senders → pending waiters see ConnectionLost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::SetOp;

    #[test]
    fn shard_hints_follow_the_touched_data() {
        assert_eq!(shard_hint(&Request::Ping), None);
        assert_eq!(shard_hint(&Request::BankAudit), None);
        assert_eq!(
            shard_hint(&Request::BankTransfer {
                from: 7,
                to: 3,
                amount: 1
            }),
            Some(7)
        );
        let a = shard_hint(&Request::Intset {
            op: SetOp::Member,
            key: -5,
        });
        assert!(a.is_some(), "negative keys still map to a hint");
        assert_eq!(
            a,
            shard_hint(&Request::Hashset {
                op: SetOp::Insert,
                key: -5
            }),
            "same key, same hint, regardless of table"
        );
    }

    #[test]
    fn connect_is_lazy_and_send_reports_refusal() {
        // Port 1 on localhost is essentially never listening.
        let client = WireClient::connect("127.0.0.1:1", 2).expect("lazy connect cannot fail");
        match client.send(&Request::Ping) {
            Err(WireError::Io(_)) => {}
            Err(e) => panic!("expected an i/o error, got {e:?}"),
            Ok(_) => panic!("send to a dead port must not succeed"),
        }
    }
}
