//! Per-connection plumbing shared by server and client: the outbound frame
//! queue each writer loop drains, and the bounded in-flight window that
//! propagates backpressure to the socket.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// An unbounded, closeable MPSC queue of encoded frames feeding one writer
/// loop. Unlike the service's admission queue this one never sheds —
/// everything pushed here is a response (or an already-admitted client
/// request) that *must* reach the socket; its depth is bounded externally by
/// the in-flight [`Window`], not by dropping.
pub struct OutQueue {
    inner: Arc<OutInner>,
}

struct OutInner {
    state: Mutex<OutState>,
    cv: Condvar,
}

struct OutState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

impl Clone for OutQueue {
    fn clone(&self) -> Self {
        OutQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for OutQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl OutQueue {
    /// Empty open queue.
    pub fn new() -> Self {
        OutQueue {
            inner: Arc::new(OutInner {
                state: Mutex::new(OutState {
                    frames: VecDeque::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Enqueue one encoded frame. Frames pushed after close are dropped
    /// (the connection is going away; there is no socket to write to).
    pub fn push(&self, frame: Vec<u8>) {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return;
        }
        st.frames.push_back(frame);
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Blocking pop: the next frame, or `None` once closed *and* drained —
    /// close-then-drain, so a writer flushes everything accepted before
    /// exiting.
    pub fn pop(&self) -> Option<Vec<u8>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(f) = st.frames.pop_front() {
                return Some(f);
            }
            if st.closed {
                return None;
            }
            st = self.inner.cv.wait(st).unwrap();
        }
    }

    /// Close the queue: producers become no-ops, the writer drains then
    /// ends.
    pub fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.cv.notify_all();
    }
}

/// A bounded in-flight window: the per-connection cap on requests that have
/// been read off the socket but whose responses have not yet been queued for
/// writing.
///
/// The reader thread [`acquire`](Window::acquire)s before submitting each
/// request and the completion path [`release`](Window::release)s when the
/// response is queued. When a connection has `cap` requests outstanding the
/// reader *stops reading* — the kernel receive buffer fills, the TCP window
/// closes, and the client's writes block: backpressure propagates to the
/// socket instead of the server buffering an unbounded number of decoded
/// requests per connection.
pub struct Window {
    inner: Arc<WindowInner>,
}

struct WindowInner {
    state: Mutex<WindowState>,
    cv: Condvar,
    cap: usize,
}

struct WindowState {
    in_flight: usize,
    closed: bool,
}

impl Clone for Window {
    fn clone(&self) -> Self {
        Window {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Window {
    /// Window admitting at most `cap` in-flight requests.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window must admit at least one request");
        Window {
            inner: Arc::new(WindowInner {
                state: Mutex::new(WindowState {
                    in_flight: 0,
                    closed: false,
                }),
                cv: Condvar::new(),
                cap,
            }),
        }
    }

    /// Block until a slot frees up (or the window closes). Returns `false`
    /// if closed — the reader should stop.
    pub fn acquire(&self) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.closed {
                return false;
            }
            if st.in_flight < self.inner.cap {
                st.in_flight += 1;
                return true;
            }
            st = self.inner.cv.wait(st).unwrap();
        }
    }

    /// Return a slot (response queued). Safe to call from any thread.
    pub fn release(&self) {
        let mut st = self.inner.state.lock().unwrap();
        debug_assert!(st.in_flight > 0, "release without acquire");
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Unblock any reader waiting on the window (connection teardown).
    pub fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.cv.notify_all();
    }

    /// Currently in-flight requests.
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().unwrap().in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn out_queue_is_fifo_and_close_then_drain() {
        let q = OutQueue::new();
        q.push(vec![1]);
        q.push(vec![2]);
        q.close();
        q.push(vec![3]); // after close: dropped
        assert_eq!(q.pop(), Some(vec![1]));
        assert_eq!(q.pop(), Some(vec![2]));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn out_queue_close_releases_blocked_pop() {
        let q = OutQueue::new();
        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), None);
    }

    #[test]
    fn window_blocks_at_cap_and_resumes_on_release() {
        let w = Window::new(2);
        assert!(w.acquire());
        assert!(w.acquire());
        assert_eq!(w.in_flight(), 2);
        let w2 = w.clone();
        let j = std::thread::spawn(move || w2.acquire());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(w.in_flight(), 2, "third acquire must be blocked at cap");
        w.release();
        assert!(j.join().unwrap(), "release must unblock the waiter");
        assert_eq!(w.in_flight(), 2);
    }

    #[test]
    fn window_close_unblocks_with_false() {
        let w = Window::new(1);
        assert!(w.acquire());
        let w2 = w.clone();
        let j = std::thread::spawn(move || w2.acquire());
        std::thread::sleep(Duration::from_millis(10));
        w.close();
        assert!(!j.join().unwrap(), "close must fail pending acquires");
        assert!(!w.acquire(), "closed windows admit nothing");
    }
}
