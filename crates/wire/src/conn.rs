//! Per-connection plumbing shared by server and client: the outbound frame
//! queue each writer loop drains, and the bounded in-flight window that
//! propagates backpressure to the socket.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// An unbounded, closeable MPSC queue of encoded frames feeding one writer
/// loop. Unlike the service's admission queue this one never sheds —
/// everything pushed here is a response (or an already-admitted client
/// request) that *must* reach the socket; its depth is bounded externally by
/// the in-flight [`Window`], not by dropping.
pub struct OutQueue {
    inner: Arc<OutInner>,
}

struct OutInner {
    state: Mutex<OutState>,
    cv: Condvar,
}

struct OutState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

impl Clone for OutQueue {
    fn clone(&self) -> Self {
        OutQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for OutQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl OutQueue {
    /// Empty open queue.
    pub fn new() -> Self {
        OutQueue {
            inner: Arc::new(OutInner {
                state: Mutex::new(OutState {
                    frames: VecDeque::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Enqueue one encoded frame. Frames pushed after close are dropped
    /// (the connection is going away; there is no socket to write to).
    pub fn push(&self, frame: Vec<u8>) {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return;
        }
        st.frames.push_back(frame);
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Blocking pop: the next frame, or `None` once closed *and* drained —
    /// close-then-drain, so a writer flushes everything accepted before
    /// exiting.
    pub fn pop(&self) -> Option<Vec<u8>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(f) = st.frames.pop_front() {
                return Some(f);
            }
            if st.closed {
                return None;
            }
            st = self.inner.cv.wait(st).unwrap();
        }
    }

    /// Blocking batch pop: waits like [`pop`](OutQueue::pop), then drains up
    /// to `max` frames into `out` in FIFO order. Returns the number
    /// appended; `0` means closed and fully drained. One lock acquisition
    /// amortizes over the whole burst — the writer loop coalesces the
    /// drained frames into a single socket write.
    pub fn pop_batch(&self, out: &mut Vec<Vec<u8>>, max: usize) -> usize {
        assert!(max >= 1, "batch size must be at least 1");
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if !st.frames.is_empty() {
                let n = st.frames.len().min(max);
                out.extend(st.frames.drain(..n));
                return n;
            }
            if st.closed {
                return 0;
            }
            st = self.inner.cv.wait(st).unwrap();
        }
    }

    /// Close the queue: producers become no-ops, the writer drains then
    /// ends.
    pub fn close(&self) {
        self.inner.state.lock().unwrap().closed = true;
        self.inner.cv.notify_all();
    }
}

/// A bounded in-flight window: the per-connection cap on requests that have
/// been read off the socket but whose responses have not yet been queued for
/// writing.
///
/// The reader thread [`acquire`](Window::acquire)s before submitting each
/// request and the completion path [`release`](Window::release)s when the
/// response is queued. When a connection has `cap` requests outstanding the
/// reader *stops reading* — the kernel receive buffer fills, the TCP window
/// closes, and the client's writes block: backpressure propagates to the
/// socket instead of the server buffering an unbounded number of decoded
/// requests per connection.
pub struct Window {
    inner: Arc<WindowInner>,
}

/// High bit of the window word: closed.
const WIN_CLOSED: u64 = 1 << 63;
/// Low bits: the in-flight count.
const WIN_COUNT: u64 = WIN_CLOSED - 1;

struct WindowInner {
    /// In-flight count (low bits) + closed flag (high bit). The acquire and
    /// release fast paths are single CAS/fetch ops on this word; the
    /// mutex/condvar pair below is touched only when the reader is actually
    /// parked at the cap (same wakeup protocol as the submission ring —
    /// DESIGN.md §13).
    state: AtomicU64,
    /// Parked acquirers (0 or 1: one reader per connection).
    waiters: AtomicU64,
    park: Mutex<()>,
    cv: Condvar,
    cap: u64,
}

impl Clone for Window {
    fn clone(&self) -> Self {
        Window {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Window {
    /// Window admitting at most `cap` in-flight requests.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window must admit at least one request");
        Window {
            inner: Arc::new(WindowInner {
                state: AtomicU64::new(0),
                waiters: AtomicU64::new(0),
                park: Mutex::new(()),
                cv: Condvar::new(),
                cap: cap as u64,
            }),
        }
    }

    /// Block until a slot frees up (or the window closes). Returns `false`
    /// if closed — the reader should stop. Lock-free while slots are
    /// available; parks only at the cap.
    pub fn acquire(&self) -> bool {
        let inner = &*self.inner;
        loop {
            let st = inner.state.load(Ordering::Acquire);
            if st & WIN_CLOSED != 0 {
                return false;
            }
            if st & WIN_COUNT < inner.cap {
                if inner
                    .state
                    .compare_exchange_weak(st, st + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    return true;
                }
                continue;
            }
            // At cap: park. Register in `waiters` and re-check under the
            // lock so a concurrent release/close (which reads `waiters`
            // behind a SeqCst fence) cannot slip through unnoticed.
            let guard = inner.park.lock().unwrap();
            inner.waiters.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let st = inner.state.load(Ordering::SeqCst);
            if st & WIN_CLOSED == 0 && st & WIN_COUNT >= inner.cap {
                let _guard = inner.cv.wait(guard).unwrap();
            }
            inner.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Return a slot (response queued). Safe to call from any thread; a
    /// single `fetch_sub` unless the reader is parked at the cap.
    pub fn release(&self) {
        let inner = &*self.inner;
        let prev = inner.state.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev & WIN_COUNT > 0, "release without acquire");
        fence(Ordering::SeqCst);
        if inner.waiters.load(Ordering::SeqCst) > 0 {
            drop(inner.park.lock().unwrap());
            inner.cv.notify_one();
        }
    }

    /// Unblock any reader waiting on the window (connection teardown).
    pub fn close(&self) {
        self.inner.state.fetch_or(WIN_CLOSED, Ordering::SeqCst);
        drop(self.inner.park.lock().unwrap());
        self.inner.cv.notify_all();
    }

    /// Currently in-flight requests.
    pub fn in_flight(&self) -> usize {
        (self.inner.state.load(Ordering::SeqCst) & WIN_COUNT) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn out_queue_is_fifo_and_close_then_drain() {
        let q = OutQueue::new();
        q.push(vec![1]);
        q.push(vec![2]);
        q.close();
        q.push(vec![3]); // after close: dropped
        assert_eq!(q.pop(), Some(vec![1]));
        assert_eq!(q.pop(), Some(vec![2]));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn out_queue_close_releases_blocked_pop() {
        let q = OutQueue::new();
        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), None);
    }

    #[test]
    fn out_queue_pop_batch_drains_bursts_then_ends() {
        let q = OutQueue::new();
        for i in 0..5u8 {
            q.push(vec![i]);
        }
        let mut out = Vec::new();
        // Capped at `max`, FIFO prefix first.
        assert_eq!(q.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![vec![0], vec![1], vec![2]]);
        // The remainder comes in one call; close-then-drain still ends with 0.
        q.close();
        assert_eq!(q.pop_batch(&mut out, 64), 2);
        assert_eq!(out.len(), 5);
        assert_eq!(q.pop_batch(&mut out, 64), 0, "closed + drained ends");
    }

    #[test]
    fn out_queue_pop_batch_blocks_until_work_or_close() {
        let q = OutQueue::new();
        let q2 = q.clone();
        let j = std::thread::spawn(move || {
            let mut out = Vec::new();
            (q2.pop_batch(&mut out, 8), out)
        });
        std::thread::sleep(Duration::from_millis(10));
        q.push(vec![7]);
        assert_eq!(j.join().unwrap(), (1, vec![vec![7]]));

        let q2 = q.clone();
        let j = std::thread::spawn(move || q2.pop_batch(&mut Vec::new(), 8));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(j.join().unwrap(), 0, "close releases a blocked batch pop");
    }

    /// Ping-pong stress across the parking protocol: an acquirer racing a
    /// releaser at cap must neither deadlock (lost wakeup) nor over-admit.
    #[test]
    fn window_stress_ping_pong_at_cap() {
        let w = Window::new(1);
        const ROUNDS: u64 = 20_000;
        std::thread::scope(|s| {
            let w2 = w.clone();
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    assert!(w2.acquire(), "window closed mid-test");
                }
            });
            for _ in 0..ROUNDS {
                // Busy-wait until the acquirer holds the slot, then hand it
                // back — every release races the next parked acquire.
                while w.in_flight() == 0 {
                    std::hint::spin_loop();
                }
                assert_eq!(w.in_flight(), 1, "cap-1 window must never over-admit");
                w.release();
            }
        });
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn window_blocks_at_cap_and_resumes_on_release() {
        let w = Window::new(2);
        assert!(w.acquire());
        assert!(w.acquire());
        assert_eq!(w.in_flight(), 2);
        let w2 = w.clone();
        let j = std::thread::spawn(move || w2.acquire());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(w.in_flight(), 2, "third acquire must be blocked at cap");
        w.release();
        assert!(j.join().unwrap(), "release must unblock the waiter");
        assert_eq!(w.in_flight(), 2);
    }

    #[test]
    fn window_close_unblocks_with_false() {
        let w = Window::new(1);
        assert!(w.acquire());
        let w2 = w.clone();
        let j = std::thread::spawn(move || w2.acquire());
        std::thread::sleep(Duration::from_millis(10));
        w.close();
        assert!(!j.join().unwrap(), "close must fail pending acquires");
        assert!(!w.acquire(), "closed windows admit nothing");
    }
}
