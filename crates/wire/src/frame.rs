//! The wire frame format and its codec.
//!
//! Every message on a connection — request or response — is one *frame*: a
//! little-endian length prefix followed by a fixed 16-byte header and an
//! opcode-specific payload.
//!
//! ```text
//! offset  size  field
//! 0       4     body length N (u32 LE) — bytes from offset 4 to frame end
//! 4       1     protocol version (WIRE_VERSION)
//! 5       1     opcode
//! 6       2     flags (reserved, must be zero)
//! 8       8     request id (u64 LE) — client-assigned, echoed by responses
//! 16      4     shard hint (u32 LE; NO_SHARD_HINT = none)
//! 20      N-16  payload
//! ```
//!
//! So `N >= 16` always, and a frame occupies `4 + N` bytes on the wire. The
//! body length is bounded by [`MAX_FRAME_BODY`]; a peer announcing more is a
//! protocol violation, caught *before* any allocation sized from the length
//! field — a malformed or hostile peer can never make the decoder reserve
//! unbounded memory.
//!
//! Decoding is zero-copy-leaning: [`decode_frame`] yields a [`Frame`] whose
//! payload *borrows* the connection's read buffer, so the hot serving path
//! parses requests without copying payload bytes. Every malformed input maps
//! to a typed [`FrameError`] — truncation is not an error (the streaming
//! decoder just waits for more bytes), but runt/oversized lengths, version
//! skew and unknown opcodes are, and none of them panic.

/// Protocol version this build speaks. Bumped on any incompatible layout
/// change; a peer announcing a different version is rejected with
/// [`FrameError::VersionSkew`] on its first frame.
pub const WIRE_VERSION: u8 = 1;

/// Fixed header bytes covered by the body length (version through shard
/// hint).
pub const HEADER_BODY: usize = 16;

/// Bytes of the length prefix itself.
pub const LEN_PREFIX: usize = 4;

/// Upper bound on the body length field: 1 MiB. Far above any payload this
/// protocol defines, far below anything that could pressure memory.
pub const MAX_FRAME_BODY: u32 = 1 << 20;

/// Shard-hint wire encoding for "no hint".
pub const NO_SHARD_HINT: u32 = u32::MAX;

/// Frame opcodes: requests in the low range, responses with the top bit
/// set. One shared enum keeps request/response framing symmetric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness / RTT probe; empty payload, answered with an empty `RespOk`.
    Ping = 0x01,
    /// Bank transfer: payload `from u32, to u32, amount i64`.
    BankTransfer = 0x02,
    /// Bank audit: empty payload; response payload is the total `i64`.
    BankAudit = 0x03,
    /// Sorted-list set operation: payload `op u8, key i64`.
    IntsetOp = 0x04,
    /// Hash-set operation: payload `op u8, key i64`.
    HashsetOp = 0x05,
    /// Live metrics scrape: empty payload, answered with [`Opcode::RespStats`]
    /// carrying a JSON snapshot. Served inline on the connection reader —
    /// never queued behind the transactional workload — so it stays
    /// answerable while the service sheds load.
    Stats = 0x06,
    /// Successful response; payload depends on the request opcode.
    RespOk = 0x80,
    /// The service shed the request (admission control) — the typed
    /// overload signal; empty payload.
    RespOverloaded = 0x81,
    /// Request-level failure; payload is one [`ErrorCode`] byte.
    RespError = 0x82,
    /// Metrics snapshot response: payload is a UTF-8 JSON document.
    RespStats = 0x83,
}

impl Opcode {
    /// Parse a wire byte into an opcode.
    pub fn from_u8(b: u8) -> Result<Opcode, FrameError> {
        Ok(match b {
            0x01 => Opcode::Ping,
            0x02 => Opcode::BankTransfer,
            0x03 => Opcode::BankAudit,
            0x04 => Opcode::IntsetOp,
            0x05 => Opcode::HashsetOp,
            0x06 => Opcode::Stats,
            0x80 => Opcode::RespOk,
            0x81 => Opcode::RespOverloaded,
            0x82 => Opcode::RespError,
            0x83 => Opcode::RespStats,
            other => return Err(FrameError::UnknownOpcode(other)),
        })
    }

    /// Whether this opcode is a request (client → server).
    pub fn is_request(self) -> bool {
        (self as u8) & 0x80 == 0
    }
}

/// Request-level error codes carried in a [`Opcode::RespError`] payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request payload did not parse for its opcode.
    BadPayload = 1,
    /// A response opcode arrived where a request was expected (or vice
    /// versa).
    WrongDirection = 2,
    /// The service is shutting down.
    Shutdown = 3,
}

impl ErrorCode {
    /// Parse a wire byte.
    pub fn from_u8(b: u8) -> Result<ErrorCode, FrameError> {
        Ok(match b {
            1 => ErrorCode::BadPayload,
            2 => ErrorCode::WrongDirection,
            3 => ErrorCode::Shutdown,
            _ => return Err(FrameError::BadPayload("unknown error code")),
        })
    }
}

/// Every way a frame can be malformed. Typed, total, and never a panic:
/// the conformance tests feed the decoder truncations, bit flips and
/// adversarial length fields and assert it answers with one of these (or
/// asks for more bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Body length below the fixed header size — no valid frame is this
    /// short.
    Runt(u32),
    /// Body length above [`MAX_FRAME_BODY`] — rejected before any buffer
    /// is sized from it.
    Oversized(u32),
    /// The peer speaks a different protocol version.
    VersionSkew {
        /// Version byte the peer sent.
        got: u8,
    },
    /// Opcode byte outside the defined set.
    UnknownOpcode(u8),
    /// Reserved flag bits were set.
    BadFlags(u16),
    /// The payload did not parse for the frame's opcode.
    BadPayload(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Runt(n) => write!(f, "runt frame: body length {n} < {HEADER_BODY}"),
            FrameError::Oversized(n) => {
                write!(f, "oversized frame: body length {n} > {MAX_FRAME_BODY}")
            }
            FrameError::VersionSkew { got } => {
                write!(f, "protocol version skew: got {got}, speak {WIRE_VERSION}")
            }
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            FrameError::BadFlags(b) => write!(f, "reserved flag bits set: {b:#06x}"),
            FrameError::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Message opcode.
    pub opcode: Opcode,
    /// Client-assigned request id, echoed verbatim by the response.
    pub req_id: u64,
    /// Optional shard-affinity hint.
    pub shard: Option<u32>,
}

/// A decoded frame whose payload borrows the read buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The fixed header fields.
    pub header: FrameHeader,
    /// Opcode-specific payload bytes (zero-copy view into the input).
    pub payload: &'a [u8],
}

/// Append one encoded frame to `buf`. `payload` writes the payload bytes
/// into the same buffer (single-buffer, no intermediate allocation); the
/// length prefix is patched afterwards.
///
/// Panics only if the written payload exceeds [`MAX_FRAME_BODY`] — a caller
/// bug, not a wire condition (this codec never produces such payloads).
pub fn encode_frame(
    buf: &mut Vec<u8>,
    opcode: Opcode,
    req_id: u64,
    shard: Option<u32>,
    payload: impl FnOnce(&mut Vec<u8>),
) {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; LEN_PREFIX]); // length placeholder
    buf.push(WIRE_VERSION);
    buf.push(opcode as u8);
    buf.extend_from_slice(&0u16.to_le_bytes()); // flags (reserved)
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(&shard.unwrap_or(NO_SHARD_HINT).to_le_bytes());
    payload(buf);
    let body = buf.len() - start - LEN_PREFIX;
    assert!(
        body <= MAX_FRAME_BODY as usize,
        "encoder produced an oversized frame ({body} bytes)"
    );
    buf[start..start + LEN_PREFIX].copy_from_slice(&(body as u32).to_le_bytes());
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds a truncated frame; read more bytes and retry
///   (truncation is a streaming condition, not an error).
/// * `Ok(Some((frame, consumed)))` — one complete frame; the caller drops
///   `consumed` bytes from the front of `buf` when done with the (borrowed)
///   payload.
/// * `Err(_)` — the stream is not a valid frame stream; the connection
///   cannot be resynchronized and should be torn down.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame<'_>, usize)>, FrameError> {
    if buf.len() < LEN_PREFIX {
        return Ok(None); // truncated length prefix
    }
    let body = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if body < HEADER_BODY as u32 {
        return Err(FrameError::Runt(body));
    }
    if body > MAX_FRAME_BODY {
        return Err(FrameError::Oversized(body));
    }
    let total = LEN_PREFIX + body as usize;
    if buf.len() < total {
        return Ok(None); // truncated body
    }
    let version = buf[4];
    if version != WIRE_VERSION {
        return Err(FrameError::VersionSkew { got: version });
    }
    let opcode = Opcode::from_u8(buf[5])?;
    let flags = u16::from_le_bytes(buf[6..8].try_into().unwrap());
    if flags != 0 {
        return Err(FrameError::BadFlags(flags));
    }
    let req_id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let shard_raw = u32::from_le_bytes(buf[16..20].try_into().unwrap());
    let shard = (shard_raw != NO_SHARD_HINT).then_some(shard_raw);
    Ok(Some((
        Frame {
            header: FrameHeader {
                opcode,
                req_id,
                shard,
            },
            payload: &buf[LEN_PREFIX + HEADER_BODY..total],
        },
        total,
    )))
}

/// A growable read buffer with amortized-O(1) front consumption: bytes are
/// consumed by advancing a read offset, and the buffer compacts only when
/// the dead prefix dominates. This is what each connection reader feeds
/// socket reads into and decodes frames out of.
#[derive(Default)]
pub struct ReadBuf {
    data: Vec<u8>,
    start: usize,
}

impl ReadBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        ReadBuf::default()
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing when more than half the storage is dead
        // prefix — keeps the buffer at O(live bytes).
        if self.start > 0 && self.start >= self.data.len() / 2 {
            self.data.drain(..self.start);
            self.start = 0;
        }
        self.data.extend_from_slice(bytes);
    }

    /// The undecoded byte window.
    pub fn window(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Mark `n` bytes at the front as decoded.
    pub fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.data.len());
    }

    /// Bytes currently held (undecoded).
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no undecoded bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(opcode: Opcode, req_id: u64, shard: Option<u32>, payload: &[u8]) {
        let mut buf = Vec::new();
        encode_frame(&mut buf, opcode, req_id, shard, |b| {
            b.extend_from_slice(payload)
        });
        let (frame, consumed) = decode_frame(&buf).unwrap().expect("complete frame");
        assert_eq!(consumed, buf.len());
        assert_eq!(frame.header.opcode, opcode);
        assert_eq!(frame.header.req_id, req_id);
        assert_eq!(frame.header.shard, shard);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn encode_decode_roundtrip() {
        roundtrip(Opcode::Ping, 0, None, &[]);
        roundtrip(Opcode::BankTransfer, u64::MAX, Some(7), &[1, 2, 3, 4]);
        roundtrip(Opcode::RespOk, 42, None, &9i64.to_le_bytes());
        roundtrip(Opcode::RespOverloaded, 1, Some(0), &[]);
    }

    #[test]
    fn truncation_asks_for_more_never_errors() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, Opcode::IntsetOp, 9, Some(3), |b| {
            b.extend_from_slice(&[0; 9])
        });
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be 'need more'"
            );
        }
        assert!(decode_frame(&buf).unwrap().is_some());
    }

    #[test]
    fn runt_and_oversized_lengths_are_typed_errors() {
        let mut runt = Vec::new();
        runt.extend_from_slice(&3u32.to_le_bytes());
        runt.extend_from_slice(&[0; 32]);
        assert_eq!(decode_frame(&runt), Err(FrameError::Runt(3)));

        let mut big = Vec::new();
        big.extend_from_slice(&(MAX_FRAME_BODY + 1).to_le_bytes());
        // Only the length prefix is present — the oversized check must fire
        // before waiting for (or allocating) the announced body.
        assert_eq!(
            decode_frame(&big),
            Err(FrameError::Oversized(MAX_FRAME_BODY + 1))
        );
    }

    #[test]
    fn version_skew_and_unknown_opcode_are_typed_errors() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, Opcode::Ping, 5, None, |_| {});
        let mut skew = buf.clone();
        skew[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame(&skew),
            Err(FrameError::VersionSkew {
                got: WIRE_VERSION + 1
            })
        );
        let mut unk = buf.clone();
        unk[5] = 0x7f;
        assert_eq!(decode_frame(&unk), Err(FrameError::UnknownOpcode(0x7f)));
        let mut flags = buf;
        flags[6] = 0xff;
        assert_eq!(decode_frame(&flags), Err(FrameError::BadFlags(0x00ff)));
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let mut buf = Vec::new();
        for id in 0..5u64 {
            encode_frame(&mut buf, Opcode::Ping, id, None, |_| {});
        }
        let mut rb = ReadBuf::new();
        rb.extend(&buf);
        for id in 0..5u64 {
            let (frame, n) = decode_frame(rb.window()).unwrap().unwrap();
            assert_eq!(frame.header.req_id, id);
            rb.consume(n);
        }
        assert!(rb.is_empty());
        assert_eq!(decode_frame(rb.window()).unwrap(), None);
    }

    #[test]
    fn read_buf_compacts_but_preserves_window() {
        let mut rb = ReadBuf::new();
        let mut frame = Vec::new();
        encode_frame(&mut frame, Opcode::Ping, 1, None, |_| {});
        // Feed many frames, consuming as we go: storage must not grow
        // linearly with total traffic.
        for _ in 0..1000 {
            rb.extend(&frame);
            let (_, n) = decode_frame(rb.window()).unwrap().unwrap();
            rb.consume(n);
        }
        assert!(rb.is_empty());
        assert!(
            rb.data.len() < 16 * frame.len(),
            "dead prefix must be compacted, storage is {}",
            rb.data.len()
        );
    }
}
