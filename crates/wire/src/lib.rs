//! # lsa-wire — the TCP serving path over `lsa-service`
//!
//! The paper's scalable time bases make commit arbitration cheap enough to
//! serve many concurrent clients; `lsa-service` turned that into an
//! in-process request/completion front-end. This crate takes the last step
//! and puts a socket in front of it: a compact length-prefixed binary
//! protocol, a threaded TCP server multiplexing framed requests onto the
//! service's worker pool, and a pipelining client — so the system can be
//! driven (and benchmarked) across a real network boundary, with
//! backpressure that reaches all the way to the peer's socket.
//!
//! * [`frame`] — the versioned frame format and its zero-copy-leaning
//!   streaming codec; every malformed input is a typed [`FrameError`],
//!   never a panic,
//! * [`tables`] — the request/reply vocabulary ([`Request`], [`Reply`]) and
//!   the server-hosted transactional [`Tables`] they execute against (bank,
//!   sorted-list set, hash set — the same workloads the in-process
//!   benchmarks use, so numbers are comparable),
//! * [`conn`] — per-connection plumbing: the outbound frame queue and the
//!   bounded in-flight [`Window`](conn::Window) that propagates
//!   backpressure to TCP,
//! * [`server`] — [`WireServer`]: listener + per-connection reader/writer
//!   threads over a [`TxnService`](lsa_service::TxnService) pool; service
//!   sheds surface as typed [`Reply::Overloaded`] responses,
//! * [`client`] — [`WireClient`]: pipelined requests over N lanes with
//!   request-id correlation and lazy reconnect.
//!
//! The frame layout, threading model and backpressure policy are written up
//! in `DESIGN.md` §12; the harness's `net_bench` binary drives this crate
//! across the engine registry and locates each configuration's saturation
//! knee.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod conn;
pub mod frame;
pub mod server;
pub mod tables;

pub use client::{shard_hint, PendingReply, WireClient, WireError};
pub use frame::{
    decode_frame, encode_frame, ErrorCode, Frame, FrameError, FrameHeader, Opcode, ReadBuf,
    MAX_FRAME_BODY, WIRE_VERSION,
};
pub use server::{ServerConfig, WireReport, WireServer};
pub use tables::{Reply, Request, SetOp, Tables, TablesConfig};
