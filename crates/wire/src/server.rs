//! The TCP wire server: framed requests multiplexed onto a [`TxnService`]
//! worker pool.
//!
//! Threading model (DESIGN.md §12):
//!
//! * one *listener* thread accepts connections,
//! * per connection, one *reader* thread decodes frames from the socket and
//!   submits them to the service through a cloned
//!   [`ServiceHandle`](lsa_service::ServiceHandle), and one *writer* thread
//!   drains the connection's [`OutQueue`] back to the socket,
//! * the transactions themselves run on the service's worker pool — the
//!   completion closure encodes the reply and pushes it straight onto the
//!   connection's out queue, so no extra completion-pump thread sits between
//!   the engine and the socket.
//!
//! Backpressure is two-layered. The service's bounded submission queues
//! shed excess *admitted* load with typed [`Reply::Overloaded`] responses
//! (the client sees every shed — it is an answered request, counted in the
//! service's overload taxonomy). Before that, each connection's bounded
//! in-flight [`Window`] caps how many decoded requests may be outstanding;
//! at the cap the reader stops reading, the kernel's receive buffer fills,
//! and TCP pushes back on the client's writes — per-connection backpressure
//! that no amount of client pipelining can overrun.

use crate::conn::{OutQueue, Window};
use crate::frame::{decode_frame, encode_frame, ErrorCode, FrameError, ReadBuf};
use crate::tables::{Reply, Request, Tables, TablesConfig};
use lsa_engine::TxnEngine;
use lsa_obs::registry::{Counter, MetricsRegistry};
use lsa_service::pool::{Pool, PoolStats, WeakPool};
use lsa_service::{
    RunRequest, ServiceConfig, ServiceHandle, ServiceReport, SubmitError, TxnService,
};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Frames the writer drains from the out queue per wakeup; the burst is
/// coalesced into one gather buffer and hits the socket as a single
/// `write_all` instead of one syscall per reply.
const WRITER_BATCH: usize = 64;

/// Free reply-encode buffers the server retains across all connections.
const BUF_POOL_CAP: usize = 2048;

/// Wire-server construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Service worker threads (each holds one registered engine handle).
    pub workers: usize,
    /// Bounded depth of each worker's submission queue; pushes past it are
    /// answered with [`Reply::Overloaded`].
    pub queue_depth: usize,
    /// Per-connection in-flight window: decoded-but-unanswered requests a
    /// connection may have outstanding before its reader stops reading.
    pub window: usize,
    /// Sizing of the hosted tables.
    pub tables: TablesConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            queue_depth: 256,
            window: 128,
            tables: TablesConfig::default(),
        }
    }
}

/// Shared server state: shutdown flag, connection registry, wire counters,
/// and the reply-buffer pool. The counters live in the server's
/// [`MetricsRegistry`] — per-thread sharded and cache-line padded inside
/// `lsa-obs`, so readers, workers, and writers bump them without false
/// sharing, and a live `Stats` scrape sees them merged alongside the
/// service- and engine-level metrics (the registry is shared with the
/// [`TxnService`]).
struct ServerShared {
    shutdown: AtomicBool,
    conns: Mutex<Vec<ConnHandle>>,
    metrics: MetricsRegistry,
    accepted: Counter,
    frames_in: Counter,
    frames_out: Counter,
    protocol_errors: Counter,
    ops: OpCounters,
    /// Recycled reply-encode buffers: `queue_reply` takes one, the writer
    /// returns it after the frame hits the socket.
    buf_pool: Pool<Vec<u8>>,
}

/// Per-opcode request counters (`wire.op.*`): which operations the peers
/// actually send, visible live through the `Stats` surface.
struct OpCounters {
    ping: Counter,
    bank_transfer: Counter,
    bank_audit: Counter,
    intset: Counter,
    hashset: Counter,
    stats: Counter,
}

impl OpCounters {
    fn new(metrics: &MetricsRegistry) -> Self {
        OpCounters {
            ping: metrics.counter("wire.op.ping"),
            bank_transfer: metrics.counter("wire.op.bank_transfer"),
            bank_audit: metrics.counter("wire.op.bank_audit"),
            intset: metrics.counter("wire.op.intset"),
            hashset: metrics.counter("wire.op.hashset"),
            stats: metrics.counter("wire.op.stats"),
        }
    }

    fn for_req(&self, req: &Request) -> &Counter {
        match req {
            Request::Ping => &self.ping,
            Request::BankTransfer { .. } => &self.bank_transfer,
            Request::BankAudit => &self.bank_audit,
            Request::Intset { .. } => &self.intset,
            Request::Hashset { .. } => &self.hashset,
            Request::Stats => &self.stats,
        }
    }
}

/// Everything a request needs to answer on its connection, shared once per
/// connection instead of cloned per request: the old closure path cloned
/// four `Arc`s into a fresh box per request; a [`WireJob`] carries one
/// `Arc<ConnCtx>` and is itself pooled.
struct ConnCtx<E: TxnEngine> {
    tables: Tables<E>,
    out: OutQueue,
    window: Window,
    shared: Arc<ServerShared>,
}

/// A pooled request record for the serving hot path (see
/// [`RunRequest`]): armed by the reader with the decoded request and its
/// connection context, executed on a service worker, recycled to the
/// server-wide job pool. At steady state submission allocates nothing.
struct WireJob<E: TxnEngine> {
    /// Armed with the connection context; taken by `run`.
    ctx: Option<Arc<ConnCtx<E>>>,
    req: Request,
    req_id: u64,
    /// Home pool (weak: pooled jobs must not keep the pool alive).
    home: WeakPool<Box<WireJob<E>>>,
}

impl<E: TxnEngine> RunRequest<E> for WireJob<E> {
    fn run(&mut self, handle: &mut E::Handle) {
        let ctx = self.ctx.take().expect("job armed before submission");
        let reply = ctx.tables.apply(handle, &self.req);
        queue_reply(&ctx.shared, &ctx.out, self.req_id, reply);
        ctx.window.release();
    }

    fn recycle(mut self: Box<Self>) {
        // Drop the context even when `run` never executed (shed path): a
        // pooled job must not pin a dead connection's queues.
        self.ctx = None;
        if let Some(pool) = self.home.upgrade() {
            pool.put(self);
        }
    }
}

/// A live connection's teardown handles.
struct ConnHandle {
    stream: TcpStream,
    out: OutQueue,
    window: Window,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// What [`WireServer::shutdown`] hands back.
#[derive(Debug)]
pub struct WireReport {
    /// The drained service's report (latency, shed accounting, engine
    /// statistics; wire sheds appear as `abort_reasons.overload`).
    pub service: ServiceReport,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames queued for writing.
    pub frames_out: u64,
    /// Connections torn down on malformed frame streams.
    pub protocol_errors: u64,
    /// Request-record pool traffic: hits mean a request was served without
    /// allocating its record.
    pub job_pool: PoolStats,
    /// Reply-encode buffer pool traffic.
    pub buf_pool: PoolStats,
}

/// A TCP front-end serving [`Request`]s against [`Tables`] hosted on any
/// [`TxnEngine`], through an `lsa-service` worker pool.
pub struct WireServer<E: TxnEngine> {
    engine: E,
    tables: Tables<E>,
    service: Option<TxnService<E>>,
    shared: Arc<ServerShared>,
    job_pool: Pool<Box<WireJob<E>>>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl<E: TxnEngine> WireServer<E> {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), seed the
    /// tables on `engine`, start the service pool and the listener thread.
    pub fn start(engine: E, addr: &str, cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let tables = Tables::build(&engine, &cfg.tables);
        // One registry spans the whole serving path: the service registers
        // its engine/queue metrics on it, the server its wire counters, and
        // a live `Stats` scrape snapshots them all together.
        let metrics = MetricsRegistry::new();
        let service = TxnService::start_with_metrics(
            engine.clone(),
            ServiceConfig {
                workers: cfg.workers,
                queue_depth: cfg.queue_depth,
            },
            metrics.clone(),
        );
        let handle = service.handle();
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            accepted: metrics.counter("wire.accepted"),
            frames_in: metrics.counter("wire.frames_in"),
            frames_out: metrics.counter("wire.frames_out"),
            protocol_errors: metrics.counter("wire.protocol_errors"),
            ops: OpCounters::new(&metrics),
            metrics,
            buf_pool: Pool::new(BUF_POOL_CAP),
        });
        // Live in-flight window occupancy, summed across connections. Weak:
        // the registry outliving the server must not pin its state.
        let occupancy_src = Arc::downgrade(&shared);
        shared.metrics.gauge_fn("wire.window_in_flight", move || {
            occupancy_src
                .upgrade()
                .map(|s| {
                    s.conns
                        .lock()
                        .unwrap()
                        .iter()
                        .map(|c| c.window.in_flight() as i64)
                        .sum()
                })
                .unwrap_or(0)
        });
        // Sized past the in-flight high-water mark (every queue slot full
        // plus a worker batch in hand) so steady state never overflows it.
        let job_pool: Pool<Box<WireJob<E>>> =
            Pool::new(cfg.workers * cfg.queue_depth + cfg.window + 64);
        let accept = {
            let shared = Arc::clone(&shared);
            let tables = tables.clone();
            let job_pool = job_pool.clone();
            std::thread::spawn(move || {
                accept_loop(listener, shared, tables, handle, job_pool, cfg.window);
            })
        };
        Ok(WireServer {
            engine,
            tables,
            service: Some(service),
            shared,
            job_pool,
            accept: Some(accept),
            addr: local,
        })
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, tear down connection readers, drain the service (all
    /// admitted requests still execute and their responses are written),
    /// flush and join the writers, audit the tables, and report.
    pub fn shutdown(mut self) -> WireReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let conns: Vec<ConnHandle> = self.shared.conns.lock().unwrap().drain(..).collect();
        // Stop the readers first: no new submissions after this point.
        for c in &conns {
            c.window.close();
            let _ = c.stream.shutdown(Shutdown::Read);
        }
        let mut readers = Vec::new();
        let mut writers = Vec::new();
        let mut outs = Vec::new();
        for c in conns {
            readers.push(c.reader);
            writers.push(c.writer);
            outs.push(c.out);
        }
        for r in readers {
            let _ = r.join();
        }
        // Drain the service: every admitted request runs, its completion
        // closure pushes the response onto its connection's out queue.
        let service = self.service.take().expect("service present until shutdown");
        let report = service.shutdown();
        // Now the out queues are complete: close-then-drain flushes them.
        for o in &outs {
            o.close();
        }
        for w in writers {
            let _ = w.join();
        }
        self.tables.assert_quiescent(&self.engine);
        WireReport {
            service: report,
            connections: self.shared.accepted.value(),
            frames_in: self.shared.frames_in.value(),
            frames_out: self.shared.frames_out.value(),
            protocol_errors: self.shared.protocol_errors.value(),
            job_pool: self.job_pool.stats(),
            buf_pool: self.shared.buf_pool.stats(),
        }
    }

    /// The server's metrics registry — shared with its [`TxnService`], so a
    /// snapshot covers engine, service-queue, and wire-layer metrics. The
    /// same snapshot is served over the wire as [`Request::Stats`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }
}

impl<E: TxnEngine> Drop for WireServer<E> {
    fn drop(&mut self) {
        if self.service.is_some() {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(a) = self.accept.take() {
                let _ = a.join();
            }
            let conns: Vec<ConnHandle> = self.shared.conns.lock().unwrap().drain(..).collect();
            for c in &conns {
                c.window.close();
                c.out.close();
                let _ = c.stream.shutdown(Shutdown::Both);
            }
            for c in conns {
                let _ = c.reader.join();
                let _ = c.writer.join();
            }
            // Dropping the service closes and drains its queues.
            self.service.take();
        }
    }
}

fn accept_loop<E: TxnEngine>(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    tables: Tables<E>,
    service: ServiceHandle<E>,
    job_pool: Pool<Box<WireJob<E>>>,
    window_cap: usize,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a late client) is dropped
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        shared.accepted.inc();
        let out = OutQueue::new();
        let window = Window::new(window_cap);
        let ctx = Arc::new(ConnCtx {
            tables: tables.clone(),
            out: out.clone(),
            window: window.clone(),
            shared: Arc::clone(&shared),
        });
        let reader = {
            let stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            let service = service.clone();
            let job_pool = job_pool.clone();
            std::thread::spawn(move || {
                reader_loop(stream, ctx, service, job_pool);
            })
        };
        let writer = {
            let stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&shared);
            let out = out.clone();
            std::thread::spawn(move || writer_loop(stream, out, shared))
        };
        shared.conns.lock().unwrap().push(ConnHandle {
            stream,
            out,
            window,
            reader,
            writer,
        });
    }
}

/// Encode `reply` for `req_id` and queue it on the connection. The encode
/// buffer comes from the server's pool (the writer returns it after the
/// frame hits the socket), so steady-state replies allocate nothing.
fn queue_reply(shared: &ServerShared, out: &OutQueue, req_id: u64, reply: Reply) {
    let mut buf = shared
        .buf_pool
        .get()
        .unwrap_or_else(|| Vec::with_capacity(64));
    buf.clear();
    encode_frame(&mut buf, reply.opcode(), req_id, None, |b| {
        reply.encode_payload(b)
    });
    shared.frames_out.inc();
    out.push(buf);
}

fn reader_loop<E: TxnEngine>(
    mut stream: TcpStream,
    ctx: Arc<ConnCtx<E>>,
    service: ServiceHandle<E>,
    job_pool: Pool<Box<WireJob<E>>>,
) {
    let shared = Arc::clone(&ctx.shared);
    let mut rb = ReadBuf::new();
    let mut chunk = vec![0u8; 64 * 1024];
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break 'conn, // peer closed
            Ok(n) => n,
            Err(_) => break 'conn,
        };
        rb.extend(&chunk[..n]);
        loop {
            match decode_frame(rb.window()) {
                Ok(None) => break, // need more bytes
                Ok(Some((frame, consumed))) => {
                    shared.frames_in.inc();
                    let req_id = frame.header.req_id;
                    let shard = frame.header.shard.map(|s| s as usize);
                    match Request::decode(&frame) {
                        Ok(Request::Stats) => {
                            // Answered inline from the registry, off the
                            // service queues: the scrape stays live while
                            // admission control sheds the workload.
                            shared.ops.stats.inc();
                            rb.consume(consumed);
                            let json = shared.metrics.snapshot_json().into_bytes();
                            queue_reply(&shared, &ctx.out, req_id, Reply::Stats(json));
                        }
                        Ok(req) => {
                            shared.ops.for_req(&req).inc();
                            rb.consume(consumed);
                            if !submit_request(&ctx, &service, &job_pool, req_id, shard, req) {
                                break 'conn; // service closed / window closed
                            }
                        }
                        Err(FrameError::BadPayload(_)) => {
                            // Framing was sound — answer the request with a
                            // typed error and keep the stream.
                            rb.consume(consumed);
                            queue_reply(
                                &shared,
                                &ctx.out,
                                req_id,
                                Reply::Error(ErrorCode::BadPayload),
                            );
                        }
                        Err(_) => unreachable!("Request::decode only raises BadPayload"),
                    }
                }
                Err(err) => {
                    // The stream cannot be resynchronized: answer with a
                    // typed error frame (req id 0 — the header is not
                    // trustworthy) and tear the connection down.
                    shared.protocol_errors.inc();
                    let code = match err {
                        FrameError::VersionSkew { .. } => ErrorCode::WrongDirection,
                        _ => ErrorCode::BadPayload,
                    };
                    queue_reply(&shared, &ctx.out, 0, Reply::Error(code));
                    // Close-then-drain: the writer flushes the error frame,
                    // then shuts the write half down so the peer sees EOF.
                    // (On a plain peer EOF the queue stays open — in-flight
                    // replies still need the writer.)
                    ctx.out.close();
                    break 'conn;
                }
            }
        }
    }
    // Reader gone: no further submissions will land on this connection. The
    // out queue stays open — in-flight completions still push replies, and
    // the server's shutdown path closes it after the service drain.
    let _ = stream.shutdown(Shutdown::Read);
}

/// Submit one decoded request as a pooled record. Returns `false` when the
/// connection should stop reading (service closed or window torn down).
fn submit_request<E: TxnEngine>(
    ctx: &Arc<ConnCtx<E>>,
    service: &ServiceHandle<E>,
    job_pool: &Pool<Box<WireJob<E>>>,
    req_id: u64,
    shard: Option<usize>,
    req: Request,
) -> bool {
    // Bounded in-flight window: block the reader (and thereby the socket)
    // until a slot frees up.
    if !ctx.window.acquire() {
        return false;
    }
    // Arm a recycled record (or allocate one on a cold pool): one pointer-
    // sized context handle plus the `Copy` request — no per-request boxes,
    // no oneshot.
    let mut job = job_pool.get().unwrap_or_else(|| {
        Box::new(WireJob {
            ctx: None,
            req: Request::Ping,
            req_id: 0,
            home: job_pool.downgrade(),
        })
    });
    job.ctx = Some(Arc::clone(ctx));
    job.req = req;
    job.req_id = req_id;
    match service.submit_record(shard, job) {
        Ok(()) => true, // the record itself writes the response
        Err((SubmitError::Overloaded, record)) => {
            // Shed by admission control: the typed overload response IS the
            // answer — the client sees every shed explicitly. The refused
            // record goes straight back to the pool.
            queue_reply(&ctx.shared, &ctx.out, req_id, Reply::Overloaded);
            ctx.window.release();
            record.recycle();
            true
        }
        Err((SubmitError::Closed, record)) => {
            queue_reply(
                &ctx.shared,
                &ctx.out,
                req_id,
                Reply::Error(ErrorCode::Shutdown),
            );
            ctx.window.release();
            record.recycle();
            false
        }
    }
}

fn writer_loop(mut stream: TcpStream, out: OutQueue, shared: Arc<ServerShared>) {
    let mut frames: Vec<Vec<u8>> = Vec::with_capacity(WRITER_BATCH);
    let mut gather: Vec<u8> = Vec::with_capacity(16 * 1024);
    loop {
        frames.clear();
        if out.pop_batch(&mut frames, WRITER_BATCH) == 0 {
            break; // closed and fully drained: flush semantics preserved
        }
        // Coalesce the burst into one socket write. A lone frame skips the
        // gather copy; a backlog becomes a single syscall instead of one
        // per reply.
        let wrote = if frames.len() == 1 {
            stream.write_all(&frames[0])
        } else {
            gather.clear();
            for f in &frames {
                gather.extend_from_slice(f);
            }
            stream.write_all(&gather)
        };
        if wrote.is_err() {
            // The peer is gone; drain the queue so completion pushes never
            // accumulate, then exit with it.
            while out.pop().is_some() {}
            return;
        }
        // Frames are on the wire: recycle their buffers for `queue_reply`.
        for f in frames.drain(..) {
            shared.buf_pool.put(f);
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}
