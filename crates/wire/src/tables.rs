//! Request/reply message types and the server-hosted transactional tables
//! they operate on.
//!
//! The wire protocol does not ship closures — it ships *named operations*
//! against tables both sides agree on: a bank (transfer/audit over `i64`
//! accounts), a sorted-list integer set, and a bucketed hash set. The
//! server builds these on its engine at startup ([`Tables::build`]); each
//! decoded [`Request`] becomes one transaction against them, executed on an
//! `lsa-service` worker. This is the same workload vocabulary the in-process
//! benchmarks use, so wire-served numbers are directly comparable to
//! `service_bench` rows.

use crate::frame::{ErrorCode, Frame, FrameError, Opcode};
use lsa_engine::{EngineHandle, EngineVar, TxnEngine, TxnOps};
use lsa_workloads::{HashSetT, IntSetList};

/// A set operation discriminant shared by the intset and hashset opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SetOp {
    /// Membership test (read-only).
    Member = 0,
    /// Insert; reply is whether the key was newly added.
    Insert = 1,
    /// Remove; reply is whether the key was present.
    Remove = 2,
}

impl SetOp {
    fn from_u8(b: u8) -> Result<SetOp, FrameError> {
        Ok(match b {
            0 => SetOp::Member,
            1 => SetOp::Insert,
            2 => SetOp::Remove,
            _ => return Err(FrameError::BadPayload("set op out of range")),
        })
    }
}

/// One decoded request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Move `amount` from one account to another.
    BankTransfer {
        /// Source account index.
        from: u32,
        /// Destination account index.
        to: u32,
        /// Amount to move.
        amount: i64,
    },
    /// Read every account in one transaction; reply with the total.
    BankAudit,
    /// Operation on the sorted-list set.
    Intset {
        /// Which operation.
        op: SetOp,
        /// The key.
        key: i64,
    },
    /// Operation on the hash set.
    Hashset {
        /// Which operation.
        op: SetOp,
        /// The key.
        key: i64,
    },
    /// Live metrics scrape. The server answers inline on the connection
    /// reader with a [`Reply::Stats`] JSON snapshot — it never rides the
    /// service queues, so it stays answerable while the workload is shed.
    Stats,
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::BankTransfer { .. } => Opcode::BankTransfer,
            Request::BankAudit => Opcode::BankAudit,
            Request::Intset { .. } => Opcode::IntsetOp,
            Request::Hashset { .. } => Opcode::HashsetOp,
            Request::Stats => Opcode::Stats,
        }
    }

    /// Append the payload encoding to `buf`.
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Ping | Request::BankAudit | Request::Stats => {}
            Request::BankTransfer { from, to, amount } => {
                buf.extend_from_slice(&from.to_le_bytes());
                buf.extend_from_slice(&to.to_le_bytes());
                buf.extend_from_slice(&amount.to_le_bytes());
            }
            Request::Intset { op, key } | Request::Hashset { op, key } => {
                buf.push(*op as u8);
                buf.extend_from_slice(&key.to_le_bytes());
            }
        }
    }

    /// Decode a request from a frame. Response opcodes and malformed
    /// payloads yield typed errors, never panics.
    pub fn decode(frame: &Frame<'_>) -> Result<Request, FrameError> {
        let p = frame.payload;
        let exact = |n: usize| {
            if p.len() == n {
                Ok(())
            } else {
                Err(FrameError::BadPayload("payload length mismatch"))
            }
        };
        match frame.header.opcode {
            Opcode::Ping => {
                exact(0)?;
                Ok(Request::Ping)
            }
            Opcode::BankTransfer => {
                exact(16)?;
                Ok(Request::BankTransfer {
                    from: u32::from_le_bytes(p[0..4].try_into().unwrap()),
                    to: u32::from_le_bytes(p[4..8].try_into().unwrap()),
                    amount: i64::from_le_bytes(p[8..16].try_into().unwrap()),
                })
            }
            Opcode::BankAudit => {
                exact(0)?;
                Ok(Request::BankAudit)
            }
            Opcode::IntsetOp => {
                exact(9)?;
                Ok(Request::Intset {
                    op: SetOp::from_u8(p[0])?,
                    key: i64::from_le_bytes(p[1..9].try_into().unwrap()),
                })
            }
            Opcode::HashsetOp => {
                exact(9)?;
                Ok(Request::Hashset {
                    op: SetOp::from_u8(p[0])?,
                    key: i64::from_le_bytes(p[1..9].try_into().unwrap()),
                })
            }
            Opcode::Stats => {
                exact(0)?;
                Ok(Request::Stats)
            }
            Opcode::RespOk | Opcode::RespOverloaded | Opcode::RespError | Opcode::RespStats => {
                Err(FrameError::BadPayload("response opcode in request stream"))
            }
        }
    }
}

/// One decoded reply. Not `Copy`: [`Reply::Stats`] owns its JSON bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Ack with no value (ping, transfer).
    Ok,
    /// The audit total.
    Total(i64),
    /// Set-operation result (membership / inserted / removed).
    Flag(bool),
    /// Metrics snapshot: a UTF-8 JSON document.
    Stats(Vec<u8>),
    /// The service shed the request — the typed backpressure signal.
    Overloaded,
    /// Request-level failure.
    Error(ErrorCode),
}

impl Reply {
    /// The opcode this reply travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Reply::Overloaded => Opcode::RespOverloaded,
            Reply::Error(_) => Opcode::RespError,
            Reply::Stats(_) => Opcode::RespStats,
            _ => Opcode::RespOk,
        }
    }

    /// Append the payload encoding to `buf`.
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Ok | Reply::Overloaded => {}
            Reply::Total(v) => buf.extend_from_slice(&v.to_le_bytes()),
            Reply::Flag(b) => buf.push(*b as u8),
            Reply::Stats(json) => buf.extend_from_slice(json),
            Reply::Error(code) => buf.push(*code as u8),
        }
    }

    /// Decode a reply from a frame. `RespOk` payloads are disambiguated by
    /// length (empty ack, 1-byte flag, 8-byte total) — the request side
    /// knows which it expects; the decoder only validates well-formedness.
    pub fn decode(frame: &Frame<'_>) -> Result<Reply, FrameError> {
        let p = frame.payload;
        match frame.header.opcode {
            Opcode::RespOk => match p.len() {
                0 => Ok(Reply::Ok),
                1 => match p[0] {
                    0 => Ok(Reply::Flag(false)),
                    1 => Ok(Reply::Flag(true)),
                    _ => Err(FrameError::BadPayload("flag byte out of range")),
                },
                8 => Ok(Reply::Total(i64::from_le_bytes(p.try_into().unwrap()))),
                _ => Err(FrameError::BadPayload("unrecognized RespOk payload")),
            },
            Opcode::RespOverloaded => {
                if p.is_empty() {
                    Ok(Reply::Overloaded)
                } else {
                    Err(FrameError::BadPayload("overload reply carries no payload"))
                }
            }
            Opcode::RespError => {
                if p.len() == 1 {
                    Ok(Reply::Error(ErrorCode::from_u8(p[0])?))
                } else {
                    Err(FrameError::BadPayload("error reply is one code byte"))
                }
            }
            Opcode::RespStats => {
                if std::str::from_utf8(p).is_ok() {
                    Ok(Reply::Stats(p.to_vec()))
                } else {
                    Err(FrameError::BadPayload("stats reply is not UTF-8"))
                }
            }
            _ => Err(FrameError::BadPayload("request opcode in response stream")),
        }
    }
}

/// Sizing of the server-hosted tables.
#[derive(Clone, Copy, Debug)]
pub struct TablesConfig {
    /// Bank account count.
    pub accounts: u32,
    /// Initial balance per account (the audit invariant is
    /// `accounts * initial`).
    pub initial: i64,
    /// Intset keys are meaningful in `0..set_key_range`; half the even keys
    /// are pre-inserted so lookups traverse a stable-length list.
    pub set_key_range: i64,
    /// Hash-set bucket count.
    pub hash_buckets: usize,
}

impl Default for TablesConfig {
    fn default() -> Self {
        TablesConfig {
            accounts: 64,
            initial: 1_000,
            set_key_range: 128,
            hash_buckets: 32,
        }
    }
}

/// The transactional tables a wire server serves, plus the request
/// interpreter. Cheap to clone (engine vars are shared handles) — each
/// connection reader holds a clone to build request closures from.
pub struct Tables<E: TxnEngine> {
    accounts: Vec<EngineVar<E, i64>>,
    expected_total: i64,
    intset: IntSetList<E>,
    hashset: HashSetT<E>,
}

impl<E: TxnEngine> Clone for Tables<E> {
    fn clone(&self) -> Self {
        Tables {
            accounts: self.accounts.clone(),
            expected_total: self.expected_total,
            intset: self.intset.clone(),
            hashset: self.hashset.clone(),
        }
    }
}

impl<E: TxnEngine> Tables<E> {
    /// Build and seed the tables on `engine`.
    pub fn build(engine: &E, cfg: &TablesConfig) -> Self {
        assert!(cfg.accounts >= 2, "a transfer needs two accounts");
        assert!(cfg.set_key_range >= 2);
        let accounts = (0..cfg.accounts)
            .map(|_| engine.new_var(cfg.initial))
            .collect();
        let intset = IntSetList::new(engine.clone());
        let hashset = HashSetT::new(engine.clone(), cfg.hash_buckets);
        let mut h = engine.register();
        for k in (0..cfg.set_key_range).step_by(2) {
            intset.insert(&mut h, k);
            hashset.insert(&mut h, k);
        }
        Tables {
            accounts,
            expected_total: cfg.accounts as i64 * cfg.initial,
            intset,
            hashset,
        }
    }

    /// The invariant audit total (what [`Request::BankAudit`] must observe).
    pub fn expected_total(&self) -> i64 {
        self.expected_total
    }

    /// Execute one request as a transaction on `handle`. Out-of-range
    /// account indices are a request-level error, not a panic — the wire
    /// accepts arbitrary peers.
    pub fn apply(&self, h: &mut E::Handle, req: &Request) -> Reply {
        match *req {
            Request::Ping => Reply::Ok,
            Request::BankTransfer { from, to, amount } => {
                let n = self.accounts.len() as u32;
                if from >= n || to >= n || from == to {
                    return Reply::Error(ErrorCode::BadPayload);
                }
                let a = self.accounts[from as usize].clone();
                let b = self.accounts[to as usize].clone();
                h.atomically(|tx| {
                    let va = *tx.read(&a)?;
                    let vb = *tx.read(&b)?;
                    tx.write(&a, va - amount)?;
                    tx.write(&b, vb + amount)?;
                    Ok(())
                });
                Reply::Ok
            }
            Request::BankAudit => {
                let total = h.atomically(|tx| {
                    let mut sum = 0i64;
                    for a in &self.accounts {
                        sum += *tx.read(a)?;
                    }
                    Ok(sum)
                });
                Reply::Total(total)
            }
            Request::Intset { op, key } => Reply::Flag(match op {
                SetOp::Member => self.intset.contains(h, key),
                SetOp::Insert => self.intset.insert(h, key),
                SetOp::Remove => self.intset.remove(h, key),
            }),
            Request::Hashset { op, key } => Reply::Flag(match op {
                SetOp::Member => self.hashset.contains(h, key),
                SetOp::Insert => self.hashset.insert(h, key),
                SetOp::Remove => self.hashset.remove(h, key),
            }),
            // The server answers stats inline on the connection reader (the
            // tables have no registry); a direct apply yields an empty
            // snapshot so the interpreter stays total.
            Request::Stats => Reply::Stats(b"{}".to_vec()),
        }
    }

    /// Post-drain invariant audit with a fresh handle: bank conservation and
    /// intset structure. Called by the server after shutdown drains.
    pub fn assert_quiescent(&self, engine: &E) {
        let mut h = engine.register();
        let total: i64 = {
            let accounts = self.accounts.clone();
            h.atomically(|tx| {
                let mut sum = 0i64;
                for a in &accounts {
                    sum += *tx.read(a)?;
                }
                Ok(sum)
            })
        };
        assert_eq!(
            total, self.expected_total,
            "bank invariant broken over the wire"
        );
        let keys = self.intset.to_vec(&mut h);
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "intset lost sortedness/uniqueness over the wire"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        encode_frame(&mut buf, req.opcode(), 77, Some(2), |b| {
            req.encode_payload(b)
        });
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    fn roundtrip_reply(reply: Reply) {
        let mut buf = Vec::new();
        encode_frame(&mut buf, reply.opcode(), 77, None, |b| {
            reply.encode_payload(b)
        });
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(Reply::decode(&frame).unwrap(), reply);
    }

    #[test]
    fn requests_and_replies_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::BankTransfer {
            from: 3,
            to: 9,
            amount: -17,
        });
        roundtrip_request(Request::BankAudit);
        roundtrip_request(Request::Stats);
        for op in [SetOp::Member, SetOp::Insert, SetOp::Remove] {
            roundtrip_request(Request::Intset { op, key: -5 });
            roundtrip_request(Request::Hashset {
                op,
                key: i64::MAX - 1,
            });
        }
        roundtrip_reply(Reply::Ok);
        roundtrip_reply(Reply::Total(-123456789));
        roundtrip_reply(Reply::Flag(true));
        roundtrip_reply(Reply::Flag(false));
        roundtrip_reply(Reply::Stats(br#"{"counters":{}}"#.to_vec()));
        roundtrip_reply(Reply::Overloaded);
        roundtrip_reply(Reply::Error(ErrorCode::BadPayload));
        roundtrip_reply(Reply::Error(ErrorCode::Shutdown));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Transfer payload one byte short.
        let mut buf = Vec::new();
        encode_frame(&mut buf, Opcode::BankTransfer, 1, None, |b| {
            b.extend_from_slice(&[0u8; 15])
        });
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::BadPayload(_))
        ));
        // Set op discriminant out of range.
        let mut buf = Vec::new();
        encode_frame(&mut buf, Opcode::IntsetOp, 1, None, |b| {
            b.push(9);
            b.extend_from_slice(&0i64.to_le_bytes());
        });
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::BadPayload(_))
        ));
        // Response opcode where a request is expected.
        let mut buf = Vec::new();
        encode_frame(&mut buf, Opcode::RespOk, 1, None, |_| {});
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        assert!(Request::decode(&frame).is_err());
    }

    #[test]
    fn tables_apply_all_request_kinds() {
        let engine = Stm::new(SharedCounter::new());
        let tables = Tables::build(&engine, &TablesConfig::default());
        let mut h = engine.register();
        assert_eq!(tables.apply(&mut h, &Request::Ping), Reply::Ok);
        assert_eq!(
            tables.apply(
                &mut h,
                &Request::BankTransfer {
                    from: 0,
                    to: 1,
                    amount: 50
                }
            ),
            Reply::Ok
        );
        assert_eq!(
            tables.apply(&mut h, &Request::BankAudit),
            Reply::Total(tables.expected_total())
        );
        // Seeded with even keys: key 2 is present, key 3 is not.
        assert_eq!(
            tables.apply(
                &mut h,
                &Request::Intset {
                    op: SetOp::Member,
                    key: 2
                }
            ),
            Reply::Flag(true)
        );
        assert_eq!(
            tables.apply(
                &mut h,
                &Request::Hashset {
                    op: SetOp::Insert,
                    key: 3
                }
            ),
            Reply::Flag(true)
        );
        // Out-of-range account: request-level error, no panic.
        assert_eq!(
            tables.apply(
                &mut h,
                &Request::BankTransfer {
                    from: 0,
                    to: 10_000,
                    amount: 1
                }
            ),
            Reply::Error(ErrorCode::BadPayload)
        );
        tables.assert_quiescent(&engine);
    }
}
