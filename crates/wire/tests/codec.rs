//! Property tests for the wire codec: round-trip identity over arbitrary
//! messages, and totality over malformed input — the decoder answers every
//! byte string with "more bytes please", a complete frame, or a typed
//! [`FrameError`], and it never panics.

use lsa_wire::frame::{
    decode_frame, encode_frame, FrameError, HEADER_BODY, LEN_PREFIX, MAX_FRAME_BODY, WIRE_VERSION,
};
use lsa_wire::tables::{Reply, Request, SetOp};
use lsa_wire::{ErrorCode, Opcode};
use proptest::prelude::*;

fn request_from(kind: u8, a: u32, b: u32, v: i64, op: u8) -> Request {
    let op = match op % 3 {
        0 => SetOp::Member,
        1 => SetOp::Insert,
        _ => SetOp::Remove,
    };
    match kind % 6 {
        0 => Request::Ping,
        1 => Request::BankTransfer {
            from: a,
            to: b,
            amount: v,
        },
        2 => Request::BankAudit,
        3 => Request::Intset { op, key: v },
        4 => Request::Hashset { op, key: v },
        _ => Request::Stats,
    }
}

fn reply_from(kind: u8, v: i64, flag: bool) -> Reply {
    match kind % 6 {
        0 => Reply::Ok,
        1 => Reply::Total(v),
        2 => Reply::Flag(flag),
        3 => Reply::Overloaded,
        4 => Reply::Stats(format!("{{\"x\":{v}}}").into_bytes()),
        _ => Reply::Error(match kind % 3 {
            0 => ErrorCode::BadPayload,
            1 => ErrorCode::WrongDirection,
            _ => ErrorCode::Shutdown,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// encode → decode is the identity on requests, for every request id
    /// and shard hint.
    #[test]
    fn request_roundtrip(
        fields in (any::<u8>(), any::<u32>(), any::<u32>(), any::<i64>(), any::<u8>()),
        req_id in any::<u64>(),
        shard in any::<u32>(),
        with_shard in any::<bool>(),
    ) {
        let (kind, a, b, v, op) = fields;
        let req = request_from(kind, a, b, v, op);
        // u32::MAX is the on-wire "no hint" sentinel; an explicit hint must
        // avoid it.
        let shard = with_shard.then_some(shard % (u32::MAX - 1));
        let mut buf = Vec::new();
        encode_frame(&mut buf, req.opcode(), req_id, shard, |p| req.encode_payload(p));
        let (frame, consumed) = decode_frame(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(frame.header.req_id, req_id);
        prop_assert_eq!(frame.header.shard, shard);
        prop_assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    /// encode → decode is the identity on replies.
    #[test]
    fn reply_roundtrip(
        kind in any::<u8>(),
        v in any::<i64>(),
        flag in any::<bool>(),
        req_id in any::<u64>(),
    ) {
        let reply = reply_from(kind, v, flag);
        let mut buf = Vec::new();
        encode_frame(&mut buf, reply.opcode(), req_id, None, |p| reply.encode_payload(p));
        let (frame, consumed) = decode_frame(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(frame.header.req_id, req_id);
        prop_assert_eq!(Reply::decode(&frame).unwrap(), reply);
    }

    /// Every prefix of a valid frame is "need more bytes" — truncation is a
    /// streaming condition, never an error and never a panic.
    #[test]
    fn truncation_is_total(
        fields in (any::<u8>(), any::<u32>(), any::<u32>(), any::<i64>(), any::<u8>()),
        cut_seed in any::<u64>(),
    ) {
        let (kind, a, b, v, op) = fields;
        let req = request_from(kind, a, b, v, op);
        let mut buf = Vec::new();
        encode_frame(&mut buf, req.opcode(), 42, Some(1), |p| req.encode_payload(p));
        let cut = (cut_seed % buf.len() as u64) as usize;
        prop_assert_eq!(decode_frame(&buf[..cut]).unwrap(), None);
    }

    /// Arbitrary byte soup: the decoder answers with Ok(None), a frame, or
    /// a typed error — it must not panic on any input.
    #[test]
    fn decoder_is_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_frame(&bytes);
    }

    /// Single-byte corruption of a valid frame never panics, and corrupting
    /// the version, opcode or flags bytes yields the matching typed error.
    #[test]
    fn bit_flips_map_to_typed_errors(
        pos_seed in any::<u64>(),
        xor in 1u8..,
    ) {
        let req = Request::BankTransfer { from: 1, to: 2, amount: 3 };
        let mut buf = Vec::new();
        encode_frame(&mut buf, req.opcode(), 9, None, |p| req.encode_payload(p));
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= xor;
        match decode_frame(&buf) {
            Ok(None) | Ok(Some(_)) => {} // corrupted length/id/payload can stay parseable
            Err(e) => {
                if pos == 4 {
                    prop_assert_eq!(e, FrameError::VersionSkew { got: WIRE_VERSION ^ xor });
                }
                if pos == 5 {
                    prop_assert!(matches!(e, FrameError::UnknownOpcode(_)));
                }
                if pos == 6 || pos == 7 {
                    prop_assert!(matches!(e, FrameError::BadFlags(_)));
                }
            }
        }
    }
}

/// Deterministic witnesses for the `Stats` scrape opcodes: round-trip,
/// payload-carrying requests rejected, non-UTF-8 snapshots rejected, and
/// direction confusion caught — all typed, never a panic.
#[test]
fn stats_opcode_witnesses() {
    // Request round-trip: empty payload, request direction.
    assert!(Opcode::Stats.is_request());
    assert!(!Opcode::RespStats.is_request());
    let mut buf = Vec::new();
    encode_frame(&mut buf, Opcode::Stats, 11, None, |_| {});
    let (frame, consumed) = decode_frame(&buf).unwrap().unwrap();
    assert_eq!(consumed, buf.len());
    assert_eq!(Request::decode(&frame).unwrap(), Request::Stats);

    // Every truncation of a Stats frame is "need more bytes".
    for cut in 0..buf.len() {
        assert_eq!(decode_frame(&buf[..cut]).unwrap(), None);
    }

    // A Stats request carrying payload bytes is malformed.
    let mut fat = Vec::new();
    encode_frame(&mut fat, Opcode::Stats, 11, None, |p| p.push(7));
    let (frame, _) = decode_frame(&fat).unwrap().unwrap();
    assert!(matches!(
        Request::decode(&frame),
        Err(FrameError::BadPayload(_))
    ));

    // Reply round-trip preserves the JSON bytes.
    let json = br#"{"counters":{"wire.frames_in":3}}"#.to_vec();
    let reply = Reply::Stats(json.clone());
    let mut buf = Vec::new();
    encode_frame(&mut buf, reply.opcode(), 11, None, |p| {
        reply.encode_payload(p)
    });
    let (frame, _) = decode_frame(&buf).unwrap().unwrap();
    assert_eq!(Reply::decode(&frame).unwrap(), Reply::Stats(json));

    // A non-UTF-8 snapshot payload is a typed error, not a panic.
    let mut bad = Vec::new();
    encode_frame(&mut bad, Opcode::RespStats, 11, None, |p| {
        p.extend_from_slice(&[0xff, 0xfe, 0x80])
    });
    let (frame, _) = decode_frame(&bad).unwrap().unwrap();
    assert!(matches!(
        Reply::decode(&frame),
        Err(FrameError::BadPayload(_))
    ));

    // Direction confusion: RespStats in the request stream and Stats in the
    // response stream are both rejected.
    let (frame, _) = decode_frame(&bad).unwrap().unwrap();
    assert!(Request::decode(&frame).is_err());
    let mut req = Vec::new();
    encode_frame(&mut req, Opcode::Stats, 11, None, |_| {});
    let (frame, _) = decode_frame(&req).unwrap().unwrap();
    assert!(Reply::decode(&frame).is_err());
}

/// Deterministic witnesses for each malformed-frame class (the named
/// satellite cases: truncated header, oversized length, unknown opcode,
/// version skew — all typed errors, never panics).
#[test]
fn malformed_witnesses() {
    // Truncated header: 3 of the 4 length-prefix bytes.
    assert_eq!(decode_frame(&[0x10, 0x00, 0x00]).unwrap(), None);

    // Runt: body length smaller than the fixed header.
    let mut runt = Vec::new();
    runt.extend_from_slice(&((HEADER_BODY as u32) - 1).to_le_bytes());
    runt.extend_from_slice(&[0u8; 64]);
    assert_eq!(
        decode_frame(&runt),
        Err(FrameError::Runt(HEADER_BODY as u32 - 1))
    );

    // Oversized: the length field alone must trigger rejection, before the
    // decoder waits for (or allocates) a body it will never accept.
    let huge = (MAX_FRAME_BODY + 7).to_le_bytes();
    assert_eq!(
        decode_frame(&huge),
        Err(FrameError::Oversized(MAX_FRAME_BODY + 7))
    );

    // Unknown opcode.
    let mut buf = Vec::new();
    encode_frame(&mut buf, Opcode::Ping, 1, None, |_| {});
    buf[LEN_PREFIX + 1] = 0x6f;
    assert_eq!(decode_frame(&buf), Err(FrameError::UnknownOpcode(0x6f)));

    // Version skew.
    let mut buf = Vec::new();
    encode_frame(&mut buf, Opcode::Ping, 1, None, |_| {});
    buf[LEN_PREFIX] = WIRE_VERSION + 3;
    assert_eq!(
        decode_frame(&buf),
        Err(FrameError::VersionSkew {
            got: WIRE_VERSION + 3
        })
    );
}
