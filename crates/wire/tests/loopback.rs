//! End-to-end loopback tests: a real [`WireServer`] on an ephemeral TCP
//! port, driven by [`WireClient`]s (and, for the adversarial cases, raw
//! sockets) — covering correctness under concurrency, typed overload
//! shedding, malformed-peer handling, and client reconnect across a server
//! restart.

use lsa_stm::Stm;
use lsa_time::counter::SharedCounter;
use lsa_wire::frame::{decode_frame, encode_frame, ReadBuf, WIRE_VERSION};
use lsa_wire::tables::{Reply, Request, SetOp, TablesConfig};
use lsa_wire::{ErrorCode, Opcode, ServerConfig, WireClient, WireError, WireServer};
use std::io::{Read, Write};
use std::net::TcpStream;

fn stm() -> Stm<SharedCounter> {
    Stm::new(SharedCounter::new())
}

fn small_cfg() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 64,
        window: 32,
        tables: TablesConfig::default(),
    }
}

#[test]
fn ping_and_every_request_kind_roundtrip() {
    let server = WireServer::start(stm(), "127.0.0.1:0", small_cfg()).unwrap();
    let client = WireClient::connect(server.local_addr(), 1).unwrap();

    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Ok)));
    assert!(matches!(
        client.call(&Request::BankTransfer {
            from: 0,
            to: 1,
            amount: 25
        }),
        Ok(Reply::Ok)
    ));
    let total = TablesConfig::default().accounts as i64 * TablesConfig::default().initial;
    assert!(matches!(
        client.call(&Request::BankAudit),
        Ok(Reply::Total(t)) if t == total
    ));
    // Tables seed even keys: 2 is present, 3 is not.
    assert!(matches!(
        client.call(&Request::Intset {
            op: SetOp::Member,
            key: 2
        }),
        Ok(Reply::Flag(true))
    ));
    assert!(matches!(
        client.call(&Request::Hashset {
            op: SetOp::Insert,
            key: 3
        }),
        Ok(Reply::Flag(true))
    ));
    assert!(matches!(
        client.call(&Request::Hashset {
            op: SetOp::Remove,
            key: 3
        }),
        Ok(Reply::Flag(true))
    ));
    // Out-of-range transfer: a typed request-level error, connection lives.
    assert!(matches!(
        client.call(&Request::BankTransfer {
            from: 0,
            to: 99_999,
            amount: 1
        }),
        Ok(Reply::Error(ErrorCode::BadPayload))
    ));
    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Ok)));

    drop(client);
    let report = server.shutdown();
    assert!(report.frames_in >= 8);
    assert_eq!(report.frames_in, report.frames_out);
    assert_eq!(report.protocol_errors, 0);
}

/// Many client threads pipelining transfers over shared lanes: the bank
/// invariant must hold at the end (the server's shutdown path asserts it),
/// and every request must get exactly one reply.
#[test]
fn concurrent_pipelined_transfers_preserve_invariants() {
    let server = WireServer::start(stm(), "127.0.0.1:0", small_cfg()).unwrap();
    let addr = server.local_addr();
    let client = WireClient::connect(addr, 4).unwrap();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 200;
    const DEPTH: usize = 16;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let client = &client;
            s.spawn(move || {
                let mut inflight = Vec::with_capacity(DEPTH);
                for i in 0..PER_THREAD {
                    let from = ((t * 31 + i * 7) % 64) as u32;
                    let to = (from + 1 + (i % 62) as u32) % 64;
                    let req = Request::BankTransfer {
                        from,
                        to,
                        amount: 1 + (i % 5) as i64,
                    };
                    inflight.push(client.send(&req).expect("send"));
                    if inflight.len() == DEPTH {
                        for p in inflight.drain(..) {
                            assert!(matches!(p.wait(), Ok(Reply::Ok)));
                        }
                    }
                }
                for p in inflight {
                    assert!(matches!(p.wait(), Ok(Reply::Ok)));
                }
            });
        }
    });

    drop(client);
    let report = server.shutdown(); // asserts bank conservation post-drain
    assert_eq!(report.frames_in, (THREADS * PER_THREAD) as u64);
    assert_eq!(report.frames_in, report.frames_out);
    assert_eq!(report.service.submitted, report.frames_in);
}

/// A tiny service (1 worker, depth 1) flooded far past its capacity must
/// answer the excess with typed `Overloaded` replies — and the server's shed
/// accounting must agree with what the client observed.
#[test]
fn overload_sheds_with_typed_replies() {
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        window: 256,
        tables: TablesConfig::default(),
    };
    let server = WireServer::start(stm(), "127.0.0.1:0", cfg).unwrap();
    let client = WireClient::connect(server.local_addr(), 1).unwrap();

    const N: usize = 400;
    let pending: Vec<_> = (0..N)
        .map(|_| client.send(&Request::BankAudit).expect("send"))
        .collect();
    let mut ok = 0u64;
    let mut shed = 0u64;
    for p in pending {
        match p.wait().expect("every request gets a reply") {
            Reply::Total(_) => ok += 1,
            Reply::Overloaded => shed += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(ok + shed, N as u64);
    assert!(ok > 0, "some audits must get through");

    drop(client);
    let report = server.shutdown();
    assert_eq!(
        report.service.shed, shed,
        "server-side shed accounting must match the typed replies observed"
    );
}

/// A malformed peer (bad version byte) gets a typed error frame and a
/// teardown — and the server survives to serve well-formed clients.
#[test]
fn malformed_peer_is_rejected_not_fatal() {
    let server = WireServer::start(stm(), "127.0.0.1:0", small_cfg()).unwrap();
    let addr = server.local_addr();

    // Speak version WIRE_VERSION+1 at the server.
    let mut rogue = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    encode_frame(&mut buf, Opcode::Ping, 7, None, |_| {});
    buf[4] = WIRE_VERSION + 1;
    rogue.write_all(&buf).unwrap();
    // The server answers with a typed error frame, then closes.
    let mut rb = ReadBuf::new();
    let mut chunk = [0u8; 1024];
    let reply = loop {
        match decode_frame(rb.window()) {
            Ok(Some((frame, _))) => break Reply::decode(&frame).unwrap(),
            Ok(None) => match rogue.read(&mut chunk) {
                Ok(0) => panic!("connection closed before the error frame"),
                Ok(n) => rb.extend(&chunk[..n]),
                Err(e) => panic!("read failed: {e}"),
            },
            Err(e) => panic!("server sent an undecodable frame: {e}"),
        }
    };
    assert!(matches!(reply, Reply::Error(_)));
    assert_eq!(rogue.read(&mut chunk).unwrap(), 0, "stream must be closed");

    // A well-formed client is still served.
    let client = WireClient::connect(addr, 1).unwrap();
    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Ok)));

    drop(client);
    let report = server.shutdown();
    assert_eq!(report.protocol_errors, 1);
}

/// Kill the server, restart it on the same port, and keep using the same
/// client: in-flight requests fail with `ConnectionLost`, and the lanes
/// reconnect lazily so later calls succeed.
#[test]
fn client_reconnects_across_server_restart() {
    let first = WireServer::start(stm(), "127.0.0.1:0", small_cfg()).unwrap();
    let addr = first.local_addr();
    let client = WireClient::connect(addr, 2).unwrap();
    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Ok)));
    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Ok)));

    first.shutdown();

    // The old connections are dead: calls fail with a transport error until
    // a new server binds the same port.
    match client.call(&Request::Ping) {
        Ok(r) => panic!("call against a downed server succeeded: {r:?}"),
        Err(WireError::ConnectionLost) | Err(WireError::Io(_)) => {}
    }

    let second = WireServer::start(stm(), &addr.to_string(), small_cfg()).unwrap();
    let reply = client
        .call_retry(&Request::Ping, 20)
        .expect("lanes must reconnect to the restarted server");
    assert!(matches!(reply, Reply::Ok));
    // Both lanes heal, not just the one the retry exercised.
    for _ in 0..4 {
        assert!(matches!(
            client.call_retry(&Request::Ping, 20),
            Ok(Reply::Ok)
        ));
    }

    drop(client);
    second.shutdown();
}

/// Pull a `u64` counter/gauge value out of a snapshot JSON document by key.
/// A hand-rolled extractor is enough here: the format is the registry's own
/// `snapshot_json` (flat `"name":value` pairs, names never contain quotes).
fn json_value(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)? + key.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The tentpole's wire-served stats surface, live under load: while client
/// threads sweep transfers through the server, a `Stats` request over the
/// same wire returns a JSON snapshot carrying engine-, service-queue-, and
/// wire-layer metrics with values consistent with traffic actually flowing.
#[test]
fn live_stats_scrape_during_load_sweep() {
    let server = WireServer::start(stm(), "127.0.0.1:0", small_cfg()).unwrap();
    let client = WireClient::connect(server.local_addr(), 2).unwrap();

    let mut scraped = Vec::new();
    std::thread::scope(|s| {
        for t in 0..3usize {
            let client = &client;
            s.spawn(move || {
                for i in 0..300usize {
                    let from = ((t * 13 + i) % 64) as u32;
                    let to = (from + 3) % 64;
                    let r = client
                        .call(&Request::BankTransfer {
                            from,
                            to,
                            amount: 1,
                        })
                        .expect("call");
                    assert!(matches!(r, Reply::Ok | Reply::Overloaded));
                }
            });
        }
        // Scrape mid-run, over the same wire the workload is using.
        for _ in 0..5 {
            match client.call(&Request::Stats).expect("stats call") {
                Reply::Stats(json) => {
                    scraped.push(String::from_utf8(json).expect("snapshot is UTF-8"))
                }
                other => panic!("stats answered with {other:?}"),
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    });

    let last = scraped.last().expect("at least one scrape");
    // Wire layer: frames are flowing and the scrape itself is counted.
    assert!(json_value(last, "wire.frames_in").unwrap() > 0);
    assert!(json_value(last, "wire.frames_out").unwrap() > 0);
    assert!(json_value(last, "wire.op.bank_transfer").unwrap() > 0);
    assert!(json_value(last, "wire.op.stats").unwrap() >= 1);
    assert_eq!(json_value(last, "wire.protocol_errors"), Some(0));
    // Service queue layer: submissions observed, queue-depth gauge present.
    assert!(json_value(last, "service.submitted").unwrap() > 0);
    assert!(last.contains("\"service.queue_depth\":"));
    assert!(last.contains("\"service.latency_ns\":"));
    // Engine layer: transactions committed and wrote (folded per batch, so
    // a mid-run snapshot lags slightly but must be nonzero under load).
    assert!(json_value(last, "engine.commits").unwrap() > 0);
    assert!(json_value(last, "engine.writes").unwrap() > 0);
    assert!(last.contains("\"time.commit_ts.shared\""));
    // Scrapes are monotone: a later snapshot never sees fewer frames.
    let first = &scraped[0];
    assert!(
        json_value(last, "wire.frames_in").unwrap() >= json_value(first, "wire.frames_in").unwrap()
    );

    drop(client);
    let report = server.shutdown();
    // Stats replies ride frames_out but not the service: the ledger still
    // balances per layer.
    assert_eq!(report.frames_in, report.frames_out);
    assert!(report.frames_in >= 900 + 5);
}

/// Shard hints flow end to end on a genuinely sharded engine: run the same
/// transfer mix against `ShardedStm` and let the post-drain audit prove the
/// cross-shard commit protocol held up under wire-fed concurrency.
#[test]
fn sharded_engine_serves_the_wire() {
    use lsa_stm::sharded::ShardedStm;
    let engine: ShardedStm<SharedCounter> = ShardedStm::new(SharedCounter::new(), 4);
    let server = WireServer::start(engine, "127.0.0.1:0", small_cfg()).unwrap();
    let client = WireClient::connect(server.local_addr(), 2).unwrap();

    std::thread::scope(|s| {
        for t in 0..3usize {
            let client = &client;
            s.spawn(move || {
                for i in 0..150usize {
                    let from = ((t * 17 + i) % 64) as u32;
                    let to = (from + 7) % 64;
                    let r = client
                        .call(&Request::BankTransfer {
                            from,
                            to,
                            amount: 2,
                        })
                        .expect("call");
                    assert!(matches!(r, Reply::Ok | Reply::Overloaded));
                }
            });
        }
    });

    drop(client);
    server.shutdown(); // asserts the bank invariant across shards
}
