//! Bank workload: transfers between accounts plus read-only audits.
//!
//! The classic STM correctness-and-contention workload. Update transactions
//! move money between two random accounts; read-only audit transactions sum
//! every account and must always observe the invariant total — the paper's
//! "consistent snapshot" guarantee made executable. The mix is configurable,
//! and audits of all accounts are exactly the long read-only transactions for
//! which multi-version LSA shines and for which synchronization errors
//! matter (§4.3, EXP-ERR).
//!
//! The workload is generic over its [`TxnEngine`], so the same transfers and
//! audits run on LSA-RT, TL2 and the validation STM (the engine matrix the
//! harness sweeps).

use crate::rng::FastRng;
use lsa_engine::{EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};

/// Parameters of the bank workload.
#[derive(Clone, Copy, Debug)]
pub struct BankConfig {
    /// Number of accounts.
    pub accounts: usize,
    /// Initial balance per account.
    pub initial: i64,
    /// Percentage (0–100) of transactions that are read-only audits.
    pub audit_percent: u32,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 64,
            initial: 1_000,
            audit_percent: 20,
        }
    }
}

/// Shared state of the bank workload.
pub struct BankWorkload<E: TxnEngine> {
    engine: E,
    cfg: BankConfig,
    accounts: Vec<EngineVar<E, i64>>,
}

impl<E: TxnEngine> BankWorkload<E> {
    /// Create the bank on `engine`.
    pub fn new(engine: E, cfg: BankConfig) -> Self {
        assert!(cfg.accounts >= 2);
        assert!(cfg.audit_percent <= 100);
        let accounts = (0..cfg.accounts)
            .map(|_| engine.new_var(cfg.initial))
            .collect();
        BankWorkload {
            engine,
            cfg,
            accounts,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The invariant total.
    pub fn expected_total(&self) -> i64 {
        self.cfg.accounts as i64 * self.cfg.initial
    }

    /// Quiescent total (non-transactional; call when no workers run).
    pub fn quiescent_total(&self) -> i64 {
        self.accounts.iter().map(|a| *E::peek(a)).sum()
    }

    /// Build the worker for thread `tid`.
    pub fn worker(&self, tid: usize) -> BankWorker<E> {
        BankWorker {
            handle: self.engine.register(),
            accounts: self.accounts.clone(),
            cfg: self.cfg,
            rng: FastRng::new(0xBA2C + tid as u64),
            audit_failures: 0,
        }
    }
}

/// Per-thread bank worker.
pub struct BankWorker<E: TxnEngine> {
    handle: E::Handle,
    accounts: Vec<EngineVar<E, i64>>,
    cfg: BankConfig,
    rng: FastRng,
    audit_failures: u64,
}

impl<E: TxnEngine> BankWorker<E> {
    /// Run one transaction: an audit with probability `audit_percent`,
    /// otherwise a transfer between two distinct random accounts.
    pub fn step(&mut self) {
        if self.rng.percent(self.cfg.audit_percent) {
            let expected = self.cfg.accounts as i64 * self.cfg.initial;
            let accounts = &self.accounts;
            let total = self.handle.atomically(|tx| {
                let mut sum = 0i64;
                for a in accounts {
                    sum += *tx.read(a)?;
                }
                Ok(sum)
            });
            if total != expected {
                self.audit_failures += 1;
            }
        } else {
            let from = self.rng.below(self.cfg.accounts);
            let mut to = self.rng.below(self.cfg.accounts);
            if to == from {
                to = (to + 1) % self.cfg.accounts;
            }
            let amount = self.rng.range(1, 100);
            let (a, b) = (self.accounts[from].clone(), self.accounts[to].clone());
            self.handle.atomically(|tx| {
                let va = *tx.read(&a)?;
                let vb = *tx.read(&b)?;
                tx.write(&a, va - amount)?;
                tx.write(&b, vb + amount)?;
                Ok(())
            });
        }
    }

    /// Number of audits that observed a broken invariant (must stay 0).
    pub fn audit_failures(&self) -> u64 {
        self.audit_failures
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }

    /// The underlying engine handle, for engine-specific introspection
    /// (e.g. LSA-RT abort-reason breakdowns).
    pub fn handle(&self) -> &E::Handle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::{Stm, StmConfig};
    use lsa_time::counter::SharedCounter;
    use lsa_time::external::{ExternalClock, OffsetPolicy};

    fn run_invariant<E: TxnEngine>(engine: E, cfg: BankConfig, steps: u64) {
        let wl = BankWorkload::new(engine, cfg);
        let failures: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let mut w = wl.worker(t);
                    s.spawn(move || {
                        for _ in 0..steps {
                            w.step();
                        }
                        w.audit_failures()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(failures, 0, "no audit may see a broken invariant");
        assert_eq!(wl.quiescent_total(), wl.expected_total());
    }

    #[test]
    fn invariant_survives_concurrency() {
        run_invariant(Stm::new(SharedCounter::new()), BankConfig::default(), 1_000);
    }

    #[test]
    fn invariant_survives_concurrency_on_every_engine() {
        let cfg = BankConfig {
            accounts: 16,
            initial: 500,
            audit_percent: 25,
        };
        run_invariant(Tl2Stm::new(SharedCounter::new()), cfg, 500);
        run_invariant(ValidationStm::new(ValidationMode::CommitCounter), cfg, 500);
        run_invariant(ValidationStm::new(ValidationMode::Always), cfg, 300);
    }

    #[test]
    fn invariant_survives_clock_uncertainty() {
        // Large injected deviation: validity gaps of 2·dev shrink snapshots
        // (more aborts) but must never break consistency.
        let tb = ExternalClock::with_policy(100_000, OffsetPolicy::Alternating);
        run_invariant(
            Stm::with_config(tb, StmConfig::multi_version(8)),
            BankConfig {
                accounts: 16,
                initial: 500,
                audit_percent: 30,
            },
            500,
        );
    }

    #[test]
    fn audit_percent_100_is_read_only() {
        let wl = BankWorkload::new(
            Stm::new(SharedCounter::new()),
            BankConfig {
                accounts: 8,
                initial: 10,
                audit_percent: 100,
            },
        );
        let mut w = wl.worker(0);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().ro_commits, 50);
        assert_eq!(w.stats().commits, 0);
        assert_eq!(w.audit_failures(), 0);
    }
}
