//! Bank workload: transfers between accounts plus read-only audits.
//!
//! The classic STM correctness-and-contention workload. Update transactions
//! move money between two random accounts; read-only audit transactions sum
//! every account and must always observe the invariant total — the paper's
//! "consistent snapshot" guarantee made executable. The mix is configurable,
//! and audits of all accounts are exactly the long read-only transactions for
//! which multi-version LSA shines and for which synchronization errors
//! matter (§4.3, EXP-ERR).
//!
//! The workload is generic over its [`TxnEngine`], so the same transfers and
//! audits run on LSA-RT, TL2 and the validation STM (the engine matrix the
//! harness sweeps).

use crate::placement::PlacementHint;
use crate::rng::FastRng;
use lsa_engine::{EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};

/// Parameters of the bank workload.
#[derive(Clone, Copy, Debug)]
pub struct BankConfig {
    /// Number of accounts.
    pub accounts: usize,
    /// Initial balance per account.
    pub initial: i64,
    /// Percentage (0–100) of transactions that are read-only audits.
    pub audit_percent: u32,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 64,
            initial: 1_000,
            audit_percent: 20,
        }
    }
}

/// Shared state of the bank workload.
pub struct BankWorkload<E: TxnEngine> {
    engine: E,
    cfg: BankConfig,
    accounts: Vec<EngineVar<E, i64>>,
    /// Shard-affinity groups (1 = no partitioning). Account `i` belongs to
    /// group `i * groups / accounts`; under
    /// [`PlacementHint::Partitioned`] each group is pinned to its own shard
    /// and transfers stay group-local, so update transactions never cross
    /// shards. Audits always scan every account (cross-shard reads).
    groups: usize,
}

impl<E: TxnEngine> BankWorkload<E> {
    /// Create the bank on `engine` with engine-default (spread) placement.
    pub fn new(engine: E, cfg: BankConfig) -> Self {
        Self::with_placement(engine, cfg, PlacementHint::Spread)
    }

    /// Create the bank with an explicit [`PlacementHint`]. Partitioned
    /// placement pins contiguous account groups — one per engine shard —
    /// via [`TxnEngine::new_var_on`], clamped so every group keeps at least
    /// two accounts (a transfer needs a pair).
    pub fn with_placement(engine: E, cfg: BankConfig, placement: PlacementHint) -> Self {
        assert!(cfg.accounts >= 2);
        assert!(cfg.audit_percent <= 100);
        let groups = match placement {
            PlacementHint::Spread => 1,
            PlacementHint::Partitioned => engine.shards().clamp(1, cfg.accounts / 2),
        };
        let accounts = (0..cfg.accounts)
            .map(|i| match placement {
                PlacementHint::Spread => engine.new_var(cfg.initial),
                PlacementHint::Partitioned => {
                    engine.new_var_on(i * groups / cfg.accounts, cfg.initial)
                }
            })
            .collect();
        BankWorkload {
            engine,
            cfg,
            accounts,
            groups,
        }
    }

    /// Shard-affinity groups (1 unless partitioned on a sharded engine).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Index range `[start, end)` of group `g`'s accounts.
    pub fn group_bounds(&self, g: usize) -> (usize, usize) {
        assert!(g < self.groups);
        let n = self.cfg.accounts;
        (g * n / self.groups, (g + 1) * n / self.groups)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The invariant total.
    pub fn expected_total(&self) -> i64 {
        self.cfg.accounts as i64 * self.cfg.initial
    }

    /// Quiescent total (non-transactional; call when no workers run).
    pub fn quiescent_total(&self) -> i64 {
        self.accounts.iter().map(|a| *E::peek(a)).sum()
    }

    /// The account variables — what the transaction service builds its
    /// transfer/audit request closures over.
    pub fn accounts(&self) -> &[EngineVar<E, i64>] {
        &self.accounts
    }

    /// Build the worker for thread `tid`.
    pub fn worker(&self, tid: usize) -> BankWorker<E> {
        BankWorker {
            handle: self.engine.register(),
            accounts: self.accounts.clone(),
            cfg: self.cfg,
            groups: self.groups,
            rng: FastRng::new(0xBA2C + tid as u64),
            audit_failures: 0,
        }
    }
}

/// Per-thread bank worker.
pub struct BankWorker<E: TxnEngine> {
    handle: E::Handle,
    accounts: Vec<EngineVar<E, i64>>,
    cfg: BankConfig,
    groups: usize,
    rng: FastRng,
    audit_failures: u64,
}

impl<E: TxnEngine> BankWorker<E> {
    /// Run one transaction: an audit with probability `audit_percent`,
    /// otherwise a transfer between two distinct random accounts.
    pub fn step(&mut self) {
        if self.rng.percent(self.cfg.audit_percent) {
            let expected = self.cfg.accounts as i64 * self.cfg.initial;
            let accounts = &self.accounts;
            let total = self.handle.atomically(|tx| {
                let mut sum = 0i64;
                for a in accounts {
                    sum += *tx.read(a)?;
                }
                Ok(sum)
            });
            if total != expected {
                self.audit_failures += 1;
            }
        } else {
            // Under partitioned placement transfers stay group-local (the
            // group is one shard), so updates never cross shards; spread
            // placement draws from the whole table.
            let (lo, hi) = if self.groups > 1 {
                let g = self.rng.below(self.groups);
                let n = self.cfg.accounts;
                (g * n / self.groups, (g + 1) * n / self.groups)
            } else {
                (0, self.cfg.accounts)
            };
            let span = hi - lo;
            let from = lo + self.rng.below(span);
            let mut to = lo + self.rng.below(span);
            if to == from {
                to = lo + (to - lo + 1) % span;
            }
            let amount = self.rng.range(1, 100);
            let (a, b) = (self.accounts[from].clone(), self.accounts[to].clone());
            self.handle.atomically(|tx| {
                let va = *tx.read(&a)?;
                let vb = *tx.read(&b)?;
                tx.write(&a, va - amount)?;
                tx.write(&b, vb + amount)?;
                Ok(())
            });
        }
    }

    /// Number of audits that observed a broken invariant (must stay 0).
    pub fn audit_failures(&self) -> u64 {
        self.audit_failures
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }

    /// The underlying engine handle, for engine-specific introspection
    /// (e.g. LSA-RT abort-reason breakdowns).
    pub fn handle(&self) -> &E::Handle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::{Stm, StmConfig};
    use lsa_time::counter::SharedCounter;
    use lsa_time::external::{ExternalClock, OffsetPolicy};

    fn run_invariant<E: TxnEngine>(engine: E, cfg: BankConfig, steps: u64) {
        let wl = BankWorkload::new(engine, cfg);
        let failures: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let mut w = wl.worker(t);
                    s.spawn(move || {
                        for _ in 0..steps {
                            w.step();
                        }
                        w.audit_failures()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(failures, 0, "no audit may see a broken invariant");
        assert_eq!(wl.quiescent_total(), wl.expected_total());
    }

    #[test]
    fn invariant_survives_concurrency() {
        run_invariant(Stm::new(SharedCounter::new()), BankConfig::default(), 1_000);
    }

    #[test]
    fn invariant_survives_concurrency_on_every_engine() {
        let cfg = BankConfig {
            accounts: 16,
            initial: 500,
            audit_percent: 25,
        };
        run_invariant(Tl2Stm::new(SharedCounter::new()), cfg, 500);
        run_invariant(ValidationStm::new(ValidationMode::CommitCounter), cfg, 500);
        run_invariant(ValidationStm::new(ValidationMode::Always), cfg, 300);
    }

    #[test]
    fn invariant_survives_clock_uncertainty() {
        // Large injected deviation: validity gaps of 2·dev shrink snapshots
        // (more aborts) but must never break consistency.
        let tb = ExternalClock::with_policy(100_000, OffsetPolicy::Alternating);
        run_invariant(
            Stm::with_config(tb, StmConfig::multi_version(8)),
            BankConfig {
                accounts: 16,
                initial: 500,
                audit_percent: 30,
            },
            500,
        );
    }

    #[test]
    fn partitioned_placement_keeps_transfers_single_shard() {
        use lsa_stm::ShardedStm;
        let cfg = BankConfig {
            accounts: 32,
            initial: 100,
            audit_percent: 0, // transfers only — audits always cross shards
        };
        let engine = ShardedStm::new(SharedCounter::new(), 4);
        let wl = BankWorkload::with_placement(engine, cfg, crate::PlacementHint::Partitioned);
        assert_eq!(wl.groups(), 4);
        assert_eq!(wl.group_bounds(0), (0, 8));
        assert_eq!(wl.group_bounds(3), (24, 32));
        let mut w = wl.worker(0);
        for _ in 0..100 {
            w.step();
        }
        let s = w.stats();
        assert_eq!(s.commits, 100);
        assert_eq!(
            s.cross_shard_commits, 0,
            "partitioned transfers must stay shard-local"
        );
        assert_eq!(wl.quiescent_total(), wl.expected_total());

        // The spread baseline on the same engine does cross shards.
        let engine = ShardedStm::new(SharedCounter::new(), 4);
        let wl = BankWorkload::with_placement(engine, cfg, crate::PlacementHint::Spread);
        assert_eq!(wl.groups(), 1);
        let mut w = wl.worker(0);
        for _ in 0..100 {
            w.step();
        }
        assert!(
            w.stats().cross_shard_commits > 0,
            "round-robin spreading must produce cross-shard transfers"
        );
    }

    #[test]
    fn partitioned_disjoint_is_single_shard() {
        use lsa_stm::ShardedStm;
        let engine = ShardedStm::new(SharedCounter::new(), 4);
        let wl = crate::DisjointWorkload::with_placement(
            engine,
            2,
            crate::DisjointConfig {
                objects_per_thread: 16,
                accesses_per_tx: 8,
            },
            crate::PlacementHint::Partitioned,
        );
        let mut w = wl.worker(1);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().commits, 50);
        assert_eq!(
            w.stats().cross_shard_commits,
            0,
            "pinned partitions must commit shard-locally"
        );
    }

    #[test]
    fn audit_percent_100_is_read_only() {
        let wl = BankWorkload::new(
            Stm::new(SharedCounter::new()),
            BankConfig {
                accounts: 8,
                initial: 10,
                audit_percent: 100,
            },
        );
        let mut w = wl.worker(0);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().ro_commits, 50);
        assert_eq!(w.stats().commits, 0);
        assert_eq!(w.audit_failures(), 0);
    }
}
