//! The paper's §4.2 time-base overhead workload: "transactions update
//! distinct objects (but this fact is not known a priori)".
//!
//! Each thread owns a private partition of objects and every transaction
//! updates `k` distinct objects drawn from that partition. There are no
//! logical conflicts — "the programmer relies on the transactional memory to
//! actually enforce atomicity and isolation" — so throughput is limited only
//! by the STM's fixed costs, making the time base's overhead maximally
//! visible (Figure 2).

use crate::rng::FastRng;
use lsa_stm::{Stm, TVar, ThreadHandle, TxnStats};
use lsa_time::TimeBase;

/// Parameters of the disjoint-update workload.
#[derive(Clone, Copy, Debug)]
pub struct DisjointConfig {
    /// Objects per thread partition.
    pub objects_per_thread: usize,
    /// Distinct objects each transaction updates (the paper's panels use
    /// 10, 50 and 100 accesses).
    pub accesses_per_tx: usize,
}

impl Default for DisjointConfig {
    fn default() -> Self {
        DisjointConfig { objects_per_thread: 256, accesses_per_tx: 10 }
    }
}

/// The shared workload state: one object partition per prospective thread.
pub struct DisjointWorkload<B: TimeBase> {
    stm: Stm<B>,
    cfg: DisjointConfig,
    partitions: Vec<Vec<TVar<u64, B::Ts>>>,
}

impl<B: TimeBase> DisjointWorkload<B> {
    /// Allocate `threads` partitions on `stm`.
    pub fn new(stm: Stm<B>, threads: usize, cfg: DisjointConfig) -> Self {
        assert!(cfg.accesses_per_tx >= 1);
        assert!(cfg.objects_per_thread >= cfg.accesses_per_tx);
        let partitions = (0..threads)
            .map(|_| (0..cfg.objects_per_thread).map(|_| stm.new_tvar(0u64)).collect())
            .collect();
        DisjointWorkload { stm, cfg, partitions }
    }

    /// The underlying runtime.
    pub fn stm(&self) -> &Stm<B> {
        &self.stm
    }

    /// The workload parameters.
    pub fn config(&self) -> DisjointConfig {
        self.cfg
    }

    /// Number of partitions (maximum worker threads).
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Build the per-thread worker for partition `tid`.
    pub fn worker(&self, tid: usize) -> DisjointWorker<B> {
        DisjointWorker {
            handle: self.stm.register(),
            vars: self.partitions[tid].clone(),
            k: self.cfg.accesses_per_tx,
            rng: FastRng::new(0xD15C0 + tid as u64),
            picks: Vec::with_capacity(self.cfg.accesses_per_tx),
        }
    }

    /// Sum of all objects across all partitions (each committed transaction
    /// adds exactly `k`, so `total == k · commits` — the invariant tests use
    /// this).
    pub fn total(&self) -> u64 {
        self.partitions
            .iter()
            .flatten()
            .map(|v| *v.snapshot_latest())
            .sum()
    }
}

/// Per-thread worker of the disjoint-update workload.
pub struct DisjointWorker<B: TimeBase> {
    handle: ThreadHandle<B>,
    vars: Vec<TVar<u64, B::Ts>>,
    k: usize,
    rng: FastRng,
    picks: Vec<usize>,
}

impl<B: TimeBase> DisjointWorker<B> {
    /// Run one update transaction (increments `k` distinct private objects).
    pub fn step(&mut self) {
        self.rng.distinct(self.vars.len(), self.k, &mut self.picks);
        // Move picks out so the closure (which may re-run on retry) can
        // borrow it while `self.handle` is mutably borrowed.
        let picks = std::mem::take(&mut self.picks);
        let vars = &self.vars;
        self.handle.atomically(|tx| {
            for &i in &picks {
                tx.modify(&vars[i], |v| v + 1)?;
            }
            Ok(())
        });
        self.picks = picks;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TxnStats {
        self.handle.stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> TxnStats {
        self.handle.take_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_time::counter::SharedCounter;
    use lsa_time::hardware::HardwareClock;

    #[test]
    fn single_thread_accounting() {
        let wl = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            1,
            DisjointConfig { objects_per_thread: 32, accesses_per_tx: 10 },
        );
        let mut w = wl.worker(0);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().commits, 50);
        assert_eq!(w.stats().total_aborts(), 0, "disjoint work never conflicts");
        assert_eq!(wl.total(), 50 * 10);
    }

    #[test]
    fn concurrent_threads_never_conflict() {
        let threads = 4;
        let wl = DisjointWorkload::new(
            Stm::new(HardwareClock::mmtimer_free()),
            threads,
            DisjointConfig { objects_per_thread: 64, accesses_per_tx: 10 },
        );
        let per_thread = 300u64;
        let aborts: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let mut w = wl.worker(t);
                    s.spawn(move || {
                        for _ in 0..per_thread {
                            w.step();
                        }
                        w.stats().total_aborts()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wl.total(), threads as u64 * per_thread * 10);
        assert_eq!(aborts, 0, "partitions are disjoint: no conflicts possible");
    }

    #[test]
    #[should_panic(expected = "objects_per_thread")]
    fn rejects_k_larger_than_partition() {
        let _ = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            1,
            DisjointConfig { objects_per_thread: 4, accesses_per_tx: 10 },
        );
    }
}
