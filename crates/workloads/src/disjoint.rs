//! The paper's §4.2 time-base overhead workload: "transactions update
//! distinct objects (but this fact is not known a priori)".
//!
//! Each thread owns a private partition of objects and every transaction
//! updates `k` distinct objects drawn from that partition. There are no
//! logical conflicts — "the programmer relies on the transactional memory to
//! actually enforce atomicity and isolation" — so throughput is limited only
//! by the STM's fixed costs, making the time base's overhead maximally
//! visible (Figure 2).
//!
//! Generic over the [`TxnEngine`], so fixed costs can be compared *across
//! engines* as well as across time bases.

use crate::placement::PlacementHint;
use crate::rng::FastRng;
use lsa_engine::{EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};

/// Parameters of the disjoint-update workload.
#[derive(Clone, Copy, Debug)]
pub struct DisjointConfig {
    /// Objects per thread partition.
    pub objects_per_thread: usize,
    /// Distinct objects each transaction updates (the paper's panels use
    /// 10, 50 and 100 accesses).
    pub accesses_per_tx: usize,
}

impl Default for DisjointConfig {
    fn default() -> Self {
        DisjointConfig {
            objects_per_thread: 256,
            accesses_per_tx: 10,
        }
    }
}

/// The shared workload state: one object partition per prospective thread.
pub struct DisjointWorkload<E: TxnEngine> {
    engine: E,
    cfg: DisjointConfig,
    partitions: Vec<Vec<EngineVar<E, u64>>>,
}

impl<E: TxnEngine> DisjointWorkload<E> {
    /// Allocate `threads` partitions on `engine` with engine-default
    /// (spread) placement.
    pub fn new(engine: E, threads: usize, cfg: DisjointConfig) -> Self {
        Self::with_placement(engine, threads, cfg, PlacementHint::Spread)
    }

    /// Allocate with an explicit [`PlacementHint`]: partitioned placement
    /// pins thread `t`'s whole partition to shard `t % shards` via
    /// [`TxnEngine::new_var_on`], so every transaction is single-shard —
    /// the shard-local contrast to round-robin spreading, under which a
    /// `k`-access transaction touches up to `k` shards.
    pub fn with_placement(
        engine: E,
        threads: usize,
        cfg: DisjointConfig,
        placement: PlacementHint,
    ) -> Self {
        assert!(cfg.accesses_per_tx >= 1);
        assert!(cfg.objects_per_thread >= cfg.accesses_per_tx);
        let partitions = (0..threads)
            .map(|t| {
                (0..cfg.objects_per_thread)
                    .map(|_| match placement {
                        PlacementHint::Spread => engine.new_var(0u64),
                        PlacementHint::Partitioned => engine.new_var_on(t, 0u64),
                    })
                    .collect()
            })
            .collect();
        DisjointWorkload {
            engine,
            cfg,
            partitions,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The workload parameters.
    pub fn config(&self) -> DisjointConfig {
        self.cfg
    }

    /// Number of partitions (maximum worker threads).
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Build the per-thread worker for partition `tid`.
    pub fn worker(&self, tid: usize) -> DisjointWorker<E> {
        DisjointWorker {
            handle: self.engine.register(),
            vars: self.partitions[tid].clone(),
            k: self.cfg.accesses_per_tx,
            rng: FastRng::new(0xD15C0 + tid as u64),
            picks: Vec::with_capacity(self.cfg.accesses_per_tx),
        }
    }

    /// Sum of all objects across all partitions (each committed transaction
    /// adds exactly `k`, so `total == k · commits` — the invariant tests use
    /// this).
    pub fn total(&self) -> u64 {
        self.partitions.iter().flatten().map(|v| *E::peek(v)).sum()
    }
}

/// Per-thread worker of the disjoint-update workload.
pub struct DisjointWorker<E: TxnEngine> {
    handle: E::Handle,
    vars: Vec<EngineVar<E, u64>>,
    k: usize,
    rng: FastRng,
    picks: Vec<usize>,
}

impl<E: TxnEngine> DisjointWorker<E> {
    /// Run one update transaction (increments `k` distinct private objects).
    pub fn step(&mut self) {
        self.rng.distinct(self.vars.len(), self.k, &mut self.picks);
        // Move picks out so the closure (which may re-run on retry) can
        // borrow it while `self.handle` is mutably borrowed.
        let picks = std::mem::take(&mut self.picks);
        let vars = &self.vars;
        self.handle.atomically(|tx| {
            for &i in &picks {
                tx.modify(&vars[i], |v| v + 1)?;
            }
            Ok(())
        });
        self.picks = picks;
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }

    /// The underlying engine handle, for engine-specific introspection.
    pub fn handle(&self) -> &E::Handle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;
    use lsa_time::hardware::HardwareClock;

    #[test]
    fn single_thread_accounting() {
        let wl = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            1,
            DisjointConfig {
                objects_per_thread: 32,
                accesses_per_tx: 10,
            },
        );
        let mut w = wl.worker(0);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().commits, 50);
        assert_eq!(w.stats().aborts, 0, "disjoint work never conflicts");
        assert_eq!(wl.total(), 50 * 10);
    }

    fn concurrent_accounting<E: TxnEngine>(engine: E) {
        let threads = 4;
        let wl = DisjointWorkload::new(
            engine,
            threads,
            DisjointConfig {
                objects_per_thread: 64,
                accesses_per_tx: 10,
            },
        );
        let per_thread = 300u64;
        let aborts: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let mut w = wl.worker(t);
                    s.spawn(move || {
                        for _ in 0..per_thread {
                            w.step();
                        }
                        w.stats().aborts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wl.total(), threads as u64 * per_thread * 10);
        assert_eq!(aborts, 0, "partitions are disjoint: no conflicts possible");
    }

    #[test]
    fn concurrent_threads_never_conflict() {
        concurrent_accounting(Stm::new(HardwareClock::mmtimer_free()));
    }

    #[test]
    fn concurrent_threads_never_conflict_tl2() {
        concurrent_accounting(Tl2Stm::new(SharedCounter::new()));
    }

    #[test]
    fn concurrent_totals_hold_on_validation_engine() {
        // The commit-counter heuristic *does* revalidate on disjoint commits
        // (the paper's point), and in Always mode every access validates, but
        // disjoint read sets always stay valid — still zero aborts.
        concurrent_accounting(ValidationStm::new(ValidationMode::CommitCounter));
    }

    #[test]
    #[should_panic(expected = "objects_per_thread")]
    fn rejects_k_larger_than_partition() {
        let _ = DisjointWorkload::new(
            Stm::new(SharedCounter::new()),
            1,
            DisjointConfig {
                objects_per_thread: 4,
                accesses_per_tx: 10,
            },
        );
    }
}
