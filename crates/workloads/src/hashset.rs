//! Transactional bucketed hash set.
//!
//! Short transactions touching a single bucket: the low-contention,
//! small-read-set counterpoint to the linked list. With many buckets the
//! workload approaches the paper's disjoint-update regime — time-base
//! overhead dominates; with few buckets it turns into a contention benchmark.
//! Generic over the [`TxnEngine`] like every workload here.

use crate::rng::FastRng;
use lsa_engine::{EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};

/// A fixed-bucket transactional hash set of `i64` keys.
pub struct HashSetT<E: TxnEngine> {
    engine: E,
    buckets: Vec<EngineVar<E, Vec<i64>>>,
}

impl<E: TxnEngine> Clone for HashSetT<E> {
    fn clone(&self) -> Self {
        HashSetT {
            engine: self.engine.clone(),
            buckets: self.buckets.clone(),
        }
    }
}

impl<E: TxnEngine> HashSetT<E> {
    /// Empty set with `buckets` buckets on `engine`.
    pub fn new(engine: E, buckets: usize) -> Self {
        assert!(buckets >= 1);
        let buckets = (0..buckets).map(|_| engine.new_var(Vec::new())).collect();
        HashSetT { engine, buckets }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index `key` hashes to — exposed so audits (and shard-hint
    /// policies) can check key placement from outside.
    #[inline]
    pub fn bucket_index(&self, key: i64) -> usize {
        // Fibonacci hashing of the key into a bucket index.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h % self.buckets.len() as u64) as usize
    }

    #[inline]
    fn bucket_of(&self, key: i64) -> &EngineVar<E, Vec<i64>> {
        &self.buckets[self.bucket_index(key)]
    }

    /// Insert `key`; returns `false` if already present.
    pub fn insert(&self, h: &mut E::Handle, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| {
            let cur = tx.read(bucket)?;
            if cur.contains(&key) {
                return Ok(false);
            }
            let mut next = (*cur).clone();
            next.push(key);
            tx.write(bucket, next)?;
            Ok(true)
        })
    }

    /// Remove `key`; returns `false` if absent.
    pub fn remove(&self, h: &mut E::Handle, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| {
            let cur = tx.read(bucket)?;
            match cur.iter().position(|&k| k == key) {
                None => Ok(false),
                Some(i) => {
                    let mut next = (*cur).clone();
                    next.swap_remove(i);
                    tx.write(bucket, next)?;
                    Ok(true)
                }
            }
        })
    }

    /// Membership test.
    pub fn contains(&self, h: &mut E::Handle, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| Ok(tx.read(bucket)?.contains(&key)))
    }

    /// Total number of keys (read-only snapshot across every bucket).
    pub fn len(&self, h: &mut E::Handle) -> usize {
        h.atomically(|tx| {
            let mut n = 0;
            for b in &self.buckets {
                n += tx.read(b)?.len();
            }
            Ok(n)
        })
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, h: &mut E::Handle) -> bool {
        self.len(h) == 0
    }

    /// Snapshot every bucket's contents in one read-only transaction.
    pub fn buckets_snapshot(&self, h: &mut E::Handle) -> Vec<Vec<i64>> {
        h.atomically(|tx| {
            let mut out = Vec::with_capacity(self.buckets.len());
            for b in &self.buckets {
                out.push((*tx.read(b)?).clone());
            }
            Ok(out)
        })
    }
}

/// Parameters of the hashset benchmark workload.
#[derive(Clone, Copy, Debug)]
pub struct HashsetConfig {
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: i64,
    /// Number of keys pre-inserted (spread evenly over the range).
    pub initial: usize,
    /// Percentage (0–100) of operations that are read-only membership
    /// tests; the rest split evenly between inserts and removes.
    pub member_percent: u32,
    /// Bucket count. Many buckets ≈ the paper's disjoint-update regime
    /// (time-base overhead dominates); few buckets make it a contention
    /// benchmark.
    pub buckets: usize,
}

impl Default for HashsetConfig {
    fn default() -> Self {
        HashsetConfig {
            key_range: 4096,
            initial: 2048,
            member_percent: 60,
            buckets: 64,
        }
    }
}

/// The hashset benchmark: the same member/insert/remove mix as the intset
/// workload, but over single-bucket transactions — short, small read sets,
/// low structural contention. The counterpoint to the linked list: here
/// per-transaction *fixed* costs (time-base access, commit arbitration)
/// dominate instead of per-access validation, so the two workloads bracket
/// the design space the paper argues over.
pub struct HashsetWorkload<E: TxnEngine> {
    set: HashSetT<E>,
    cfg: HashsetConfig,
}

impl<E: TxnEngine> HashsetWorkload<E> {
    /// Create and pre-populate the set on `engine`.
    pub fn new(engine: E, cfg: HashsetConfig) -> Self {
        assert!(cfg.key_range >= 2, "need a non-trivial key range");
        assert!(
            cfg.initial as i64 <= cfg.key_range,
            "cannot seed more keys than the range holds"
        );
        assert!(cfg.member_percent <= 100);
        let set = HashSetT::new(engine, cfg.buckets);
        let mut h = set.engine().register();
        for i in 0..cfg.initial as i64 {
            let key = i * cfg.key_range / cfg.initial.max(1) as i64;
            set.insert(&mut h, key);
        }
        HashsetWorkload { set, cfg }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        self.set.engine()
    }

    /// The shared set (post-run audits).
    pub fn set(&self) -> &HashSetT<E> {
        &self.set
    }

    /// Assert the structural invariant with a fresh handle: every key sits
    /// in exactly the bucket it hashes to, with no duplicates anywhere.
    /// Call when no workers run; returns the key count.
    pub fn assert_placement(&self) -> usize {
        let mut h = self.set.engine().register();
        let buckets = self.set.buckets_snapshot(&mut h);
        let mut seen = std::collections::BTreeSet::new();
        for (ix, bucket) in buckets.iter().enumerate() {
            for &key in bucket {
                assert_eq!(
                    self.set.bucket_index(key),
                    ix,
                    "key {key} landed in bucket {ix} on {}",
                    self.set.engine().engine_name()
                );
                assert!(
                    seen.insert(key),
                    "duplicate key {key} on {}",
                    self.set.engine().engine_name()
                );
            }
        }
        seen.len()
    }

    /// Build the worker for thread `tid`.
    pub fn worker(&self, tid: usize) -> HashsetWorker<E> {
        HashsetWorker {
            handle: self.set.engine().register(),
            set: self.set.clone(),
            cfg: self.cfg,
            rng: FastRng::new(0x4A5_4E7 + tid as u64),
        }
    }
}

/// Per-thread hashset worker.
pub struct HashsetWorker<E: TxnEngine> {
    handle: E::Handle,
    set: HashSetT<E>,
    cfg: HashsetConfig,
    rng: FastRng,
}

impl<E: TxnEngine> HashsetWorker<E> {
    /// Run one operation: member with probability `member_percent`,
    /// otherwise insert or remove with equal probability.
    pub fn step(&mut self) {
        let key = self.rng.range(0, self.cfg.key_range);
        if self.rng.percent(self.cfg.member_percent) {
            self.set.contains(&mut self.handle, key);
        } else if self.rng.percent(50) {
            self.set.insert(&mut self.handle, key);
        } else {
            self.set.remove(&mut self.handle, key);
        }
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::FastRng;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;
    use std::collections::BTreeSet;

    fn sequential_matches_reference<E: TxnEngine>(engine: E) {
        let set = HashSetT::new(engine.clone(), 16);
        let mut h = engine.register();
        let mut reference = BTreeSet::new();
        let mut rng = FastRng::new(5);
        for _ in 0..500 {
            let key = rng.range(0, 100);
            match rng.below(3) {
                0 => assert_eq!(set.insert(&mut h, key), reference.insert(key)),
                1 => assert_eq!(set.remove(&mut h, key), reference.remove(&key)),
                _ => assert_eq!(set.contains(&mut h, key), reference.contains(&key)),
            }
        }
        assert_eq!(set.len(&mut h), reference.len());
    }

    #[test]
    fn sequential_matches_btreeset() {
        sequential_matches_reference(Stm::new(SharedCounter::new()));
    }

    #[test]
    fn sequential_matches_btreeset_on_every_engine() {
        sequential_matches_reference(Tl2Stm::new(SharedCounter::new()));
        sequential_matches_reference(ValidationStm::new(ValidationMode::Always));
        sequential_matches_reference(ValidationStm::new(ValidationMode::CommitCounter));
    }

    fn concurrent_distinct_keys<E: TxnEngine>(engine: E) {
        let set = HashSetT::new(engine.clone(), 8);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                let engine = engine.clone();
                s.spawn(move || {
                    let mut h = engine.register();
                    for k in 0..100 {
                        assert!(set.insert(&mut h, t * 1_000 + k));
                    }
                });
            }
        });
        let mut h = engine.register();
        assert_eq!(set.len(&mut h), 400);
        for t in 0..4i64 {
            for k in 0..100 {
                assert!(set.contains(&mut h, t * 1_000 + k));
            }
        }
    }

    #[test]
    fn concurrent_distinct_keys_all_present() {
        concurrent_distinct_keys(Stm::new(SharedCounter::new()));
    }

    #[test]
    fn concurrent_distinct_keys_all_present_tl2() {
        concurrent_distinct_keys(Tl2Stm::new(SharedCounter::new()));
    }

    #[test]
    fn hashset_workload_preserves_placement_under_concurrency() {
        let wl = HashsetWorkload::new(
            Stm::new(SharedCounter::new()),
            HashsetConfig {
                key_range: 256,
                initial: 128,
                member_percent: 40,
                buckets: 16,
            },
        );
        assert_eq!(wl.assert_placement(), 128, "seeding is deterministic");
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut w = wl.worker(t);
                s.spawn(move || {
                    for _ in 0..300 {
                        w.step();
                    }
                    assert!(w.stats().total_commits() >= 300);
                });
            }
        });
        wl.assert_placement();
    }

    #[test]
    fn hashset_workload_all_member_mix_is_read_only() {
        let wl = HashsetWorkload::new(
            Stm::new(SharedCounter::new()),
            HashsetConfig {
                key_range: 64,
                initial: 32,
                member_percent: 100,
                buckets: 8,
            },
        );
        let mut w = wl.worker(0);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().ro_commits, 50);
        assert_eq!(w.stats().commits, 0);
    }

    #[test]
    fn single_bucket_contention_is_correct() {
        let engine = Stm::new(SharedCounter::new());
        let set = HashSetT::new(engine.clone(), 1);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                let engine = engine.clone();
                s.spawn(move || {
                    let mut h = engine.register();
                    for k in 0..50 {
                        set.insert(&mut h, t * 100 + k);
                    }
                });
            }
        });
        let mut h = engine.register();
        assert_eq!(set.len(&mut h), 200);
    }
}
