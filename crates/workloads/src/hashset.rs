//! Transactional bucketed hash set.
//!
//! Short transactions touching a single bucket: the low-contention,
//! small-read-set counterpoint to the linked list. With many buckets the
//! workload approaches the paper's disjoint-update regime — time-base
//! overhead dominates; with few buckets it turns into a contention benchmark.
//! Generic over the [`TxnEngine`] like every workload here.

use lsa_engine::{EngineHandle, EngineVar, TxnEngine, TxnOps};

/// A fixed-bucket transactional hash set of `i64` keys.
pub struct HashSetT<E: TxnEngine> {
    engine: E,
    buckets: Vec<EngineVar<E, Vec<i64>>>,
}

impl<E: TxnEngine> HashSetT<E> {
    /// Empty set with `buckets` buckets on `engine`.
    pub fn new(engine: E, buckets: usize) -> Self {
        assert!(buckets >= 1);
        let buckets = (0..buckets).map(|_| engine.new_var(Vec::new())).collect();
        HashSetT { engine, buckets }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: i64) -> &EngineVar<E, Vec<i64>> {
        // Fibonacci hashing of the key into a bucket index.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.buckets[(h % self.buckets.len() as u64) as usize]
    }

    /// Insert `key`; returns `false` if already present.
    pub fn insert(&self, h: &mut E::Handle, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| {
            let cur = tx.read(bucket)?;
            if cur.contains(&key) {
                return Ok(false);
            }
            let mut next = (*cur).clone();
            next.push(key);
            tx.write(bucket, next)?;
            Ok(true)
        })
    }

    /// Remove `key`; returns `false` if absent.
    pub fn remove(&self, h: &mut E::Handle, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| {
            let cur = tx.read(bucket)?;
            match cur.iter().position(|&k| k == key) {
                None => Ok(false),
                Some(i) => {
                    let mut next = (*cur).clone();
                    next.swap_remove(i);
                    tx.write(bucket, next)?;
                    Ok(true)
                }
            }
        })
    }

    /// Membership test.
    pub fn contains(&self, h: &mut E::Handle, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| Ok(tx.read(bucket)?.contains(&key)))
    }

    /// Total number of keys (read-only snapshot across every bucket).
    pub fn len(&self, h: &mut E::Handle) -> usize {
        h.atomically(|tx| {
            let mut n = 0;
            for b in &self.buckets {
                n += tx.read(b)?.len();
            }
            Ok(n)
        })
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, h: &mut E::Handle) -> bool {
        self.len(h) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::FastRng;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;
    use std::collections::BTreeSet;

    fn sequential_matches_reference<E: TxnEngine>(engine: E) {
        let set = HashSetT::new(engine.clone(), 16);
        let mut h = engine.register();
        let mut reference = BTreeSet::new();
        let mut rng = FastRng::new(5);
        for _ in 0..500 {
            let key = rng.range(0, 100);
            match rng.below(3) {
                0 => assert_eq!(set.insert(&mut h, key), reference.insert(key)),
                1 => assert_eq!(set.remove(&mut h, key), reference.remove(&key)),
                _ => assert_eq!(set.contains(&mut h, key), reference.contains(&key)),
            }
        }
        assert_eq!(set.len(&mut h), reference.len());
    }

    #[test]
    fn sequential_matches_btreeset() {
        sequential_matches_reference(Stm::new(SharedCounter::new()));
    }

    #[test]
    fn sequential_matches_btreeset_on_every_engine() {
        sequential_matches_reference(Tl2Stm::new(SharedCounter::new()));
        sequential_matches_reference(ValidationStm::new(ValidationMode::Always));
        sequential_matches_reference(ValidationStm::new(ValidationMode::CommitCounter));
    }

    fn concurrent_distinct_keys<E: TxnEngine>(engine: E) {
        let set = HashSetT::new(engine.clone(), 8);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                let engine = engine.clone();
                s.spawn(move || {
                    let mut h = engine.register();
                    for k in 0..100 {
                        assert!(set.insert(&mut h, t * 1_000 + k));
                    }
                });
            }
        });
        let mut h = engine.register();
        assert_eq!(set.len(&mut h), 400);
        for t in 0..4i64 {
            for k in 0..100 {
                assert!(set.contains(&mut h, t * 1_000 + k));
            }
        }
    }

    #[test]
    fn concurrent_distinct_keys_all_present() {
        concurrent_distinct_keys(Stm::new(SharedCounter::new()));
    }

    #[test]
    fn concurrent_distinct_keys_all_present_tl2() {
        concurrent_distinct_keys(Tl2Stm::new(SharedCounter::new()));
    }

    #[test]
    fn single_bucket_contention_is_correct() {
        let engine = Stm::new(SharedCounter::new());
        let set = HashSetT::new(engine.clone(), 1);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                let engine = engine.clone();
                s.spawn(move || {
                    let mut h = engine.register();
                    for k in 0..50 {
                        set.insert(&mut h, t * 100 + k);
                    }
                });
            }
        });
        let mut h = engine.register();
        assert_eq!(set.len(&mut h), 200);
    }
}
