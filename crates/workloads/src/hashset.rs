//! Transactional bucketed hash set.
//!
//! Short transactions touching a single bucket: the low-contention,
//! small-read-set counterpoint to the linked list. With many buckets the
//! workload approaches the paper's disjoint-update regime — time-base
//! overhead dominates; with few buckets it turns into a contention benchmark.

use lsa_stm::{Stm, TVar, ThreadHandle};
use lsa_time::TimeBase;

/// A fixed-bucket transactional hash set of `i64` keys.
pub struct HashSetT<B: TimeBase> {
    stm: Stm<B>,
    buckets: Vec<TVar<Vec<i64>, B::Ts>>,
}

impl<B: TimeBase> HashSetT<B> {
    /// Empty set with `buckets` buckets.
    pub fn new(stm: Stm<B>, buckets: usize) -> Self {
        assert!(buckets >= 1);
        let buckets = (0..buckets).map(|_| stm.new_tvar(Vec::new())).collect();
        HashSetT { stm, buckets }
    }

    /// The underlying runtime.
    pub fn stm(&self) -> &Stm<B> {
        &self.stm
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: i64) -> &TVar<Vec<i64>, B::Ts> {
        // Fibonacci hashing of the key into a bucket index.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.buckets[(h % self.buckets.len() as u64) as usize]
    }

    /// Insert `key`; returns `false` if already present.
    pub fn insert(&self, h: &mut ThreadHandle<B>, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| {
            let cur = tx.read(bucket)?;
            if cur.contains(&key) {
                return Ok(false);
            }
            let mut next = (*cur).clone();
            next.push(key);
            tx.write(bucket, next)?;
            Ok(true)
        })
    }

    /// Remove `key`; returns `false` if absent.
    pub fn remove(&self, h: &mut ThreadHandle<B>, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| {
            let cur = tx.read(bucket)?;
            match cur.iter().position(|&k| k == key) {
                None => Ok(false),
                Some(i) => {
                    let mut next = (*cur).clone();
                    next.swap_remove(i);
                    tx.write(bucket, next)?;
                    Ok(true)
                }
            }
        })
    }

    /// Membership test.
    pub fn contains(&self, h: &mut ThreadHandle<B>, key: i64) -> bool {
        let bucket = self.bucket_of(key);
        h.atomically(|tx| Ok(tx.read(bucket)?.contains(&key)))
    }

    /// Total number of keys (read-only snapshot across every bucket).
    pub fn len(&self, h: &mut ThreadHandle<B>) -> usize {
        h.atomically(|tx| {
            let mut n = 0;
            for b in &self.buckets {
                n += tx.read(b)?.len();
            }
            Ok(n)
        })
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, h: &mut ThreadHandle<B>) -> bool {
        self.len(h) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::FastRng;
    use lsa_time::counter::SharedCounter;
    use std::collections::BTreeSet;

    #[test]
    fn sequential_matches_btreeset() {
        let set = HashSetT::new(Stm::new(SharedCounter::new()), 16);
        let mut h = set.stm().clone().register();
        let mut reference = BTreeSet::new();
        let mut rng = FastRng::new(5);
        for _ in 0..500 {
            let key = rng.range(0, 100);
            match rng.below(3) {
                0 => assert_eq!(set.insert(&mut h, key), reference.insert(key)),
                1 => assert_eq!(set.remove(&mut h, key), reference.remove(&key)),
                _ => assert_eq!(set.contains(&mut h, key), reference.contains(&key)),
            }
        }
        assert_eq!(set.len(&mut h), reference.len());
    }

    #[test]
    fn concurrent_distinct_keys_all_present() {
        let set = HashSetT::new(Stm::new(SharedCounter::new()), 8);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.stm().clone().register();
                    for k in 0..100 {
                        assert!(set.insert(&mut h, t * 1_000 + k));
                    }
                });
            }
        });
        let mut h = set.stm().clone().register();
        assert_eq!(set.len(&mut h), 400);
        for t in 0..4i64 {
            for k in 0..100 {
                assert!(set.contains(&mut h, t * 1_000 + k));
            }
        }
    }

    #[test]
    fn single_bucket_contention_is_correct() {
        let set = HashSetT::new(Stm::new(SharedCounter::new()), 1);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.stm().clone().register();
                    for k in 0..50 {
                        set.insert(&mut h, t * 100 + k);
                    }
                });
            }
        });
        let mut h = set.stm().clone().register();
        assert_eq!(set.len(&mut h), 200);
    }
}
