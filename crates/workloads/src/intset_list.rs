//! Transactional sorted linked-list integer set.
//!
//! The classic STM data-structure benchmark (used by DSTM, LSA-STM, TL2 …):
//! operations traverse the list inside a transaction, so the read set grows
//! linearly with the traversal length — the workload that makes per-access
//! consistency costs visible and that rewards time-based STMs (O(1) per
//! access) over validation-based ones (O(n) per access).
//!
//! Nodes are immutable values in [`TVar`]s linked through `Option<TVar>`;
//! updates replace a node's value functionally (its key stays, its `next`
//! changes), so concurrent snapshot readers keep traversing their own
//! consistent version of the list.

use lsa_stm::{Stm, TVar, ThreadHandle, TxResult, Txn};
use lsa_time::{TimeBase, Timestamp};

/// One list node: a key and the link to the next node.
#[derive(Clone)]
pub struct Node<Ts: Timestamp> {
    key: i64,
    next: Option<TVar<Node<Ts>, Ts>>,
}

/// A sorted linked-list set of `i64` keys (head/tail sentinels at ±∞).
pub struct IntSetList<B: TimeBase> {
    stm: Stm<B>,
    head: TVar<Node<B::Ts>, B::Ts>,
}

impl<B: TimeBase> IntSetList<B> {
    /// Empty set on `stm`.
    pub fn new(stm: Stm<B>) -> Self {
        let tail = stm.new_tvar(Node { key: i64::MAX, next: None });
        let head = stm.new_tvar(Node { key: i64::MIN, next: Some(tail) });
        IntSetList { stm, head }
    }

    /// The underlying runtime.
    pub fn stm(&self) -> &Stm<B> {
        &self.stm
    }

    /// Locate `key`: returns (node-var of the last node with a smaller key,
    /// its value, node-var of the first node with key ≥ `key`, its value).
    #[allow(clippy::type_complexity)]
    fn locate(
        &self,
        tx: &mut Txn<'_, B>,
        key: i64,
    ) -> TxResult<(
        TVar<Node<B::Ts>, B::Ts>,
        std::sync::Arc<Node<B::Ts>>,
        TVar<Node<B::Ts>, B::Ts>,
        std::sync::Arc<Node<B::Ts>>,
    )> {
        let mut prev_var = self.head.clone();
        let mut prev = tx.read(&prev_var)?;
        loop {
            let cur_var = prev
                .next
                .clone()
                .expect("interior node always has a successor (tail sentinel)");
            let cur = tx.read(&cur_var)?;
            if cur.key >= key {
                return Ok((prev_var, prev, cur_var, cur));
            }
            prev_var = cur_var;
            prev = cur;
        }
    }

    /// Insert `key`; returns `false` if it was already present.
    pub fn insert(&self, h: &mut ThreadHandle<B>, key: i64) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys are reserved");
        h.atomically(|tx| {
            let (prev_var, prev, cur_var, cur) = self.locate(tx, key)?;
            if cur.key == key {
                return Ok(false);
            }
            let new_var = self.stm.new_tvar(Node { key, next: Some(cur_var) });
            tx.write(&prev_var, Node { key: prev.key, next: Some(new_var) })?;
            Ok(true)
        })
    }

    /// Remove `key`; returns `false` if it was absent.
    pub fn remove(&self, h: &mut ThreadHandle<B>, key: i64) -> bool {
        h.atomically(|tx| {
            let (prev_var, prev, cur_var, cur) = self.locate(tx, key)?;
            if cur.key != key {
                return Ok(false);
            }
            // Open the victim for writing too: concurrent inserts *after*
            // `cur` would otherwise modify a node we just unlinked.
            tx.write(&cur_var, Node { key: cur.key, next: cur.next.clone() })?;
            tx.write(&prev_var, Node { key: prev.key, next: cur.next.clone() })?;
            Ok(true)
        })
    }

    /// Membership test (read-only transaction).
    pub fn contains(&self, h: &mut ThreadHandle<B>, key: i64) -> bool {
        h.atomically(|tx| {
            let (_, _, _, cur) = self.locate(tx, key)?;
            Ok(cur.key == key)
        })
    }

    /// Number of keys (read-only full traversal).
    pub fn len(&self, h: &mut ThreadHandle<B>) -> usize {
        h.atomically(|tx| {
            let mut n = 0usize;
            let mut var = self.head.clone();
            loop {
                let node = tx.read(&var)?;
                match &node.next {
                    Some(next) => {
                        if node.key != i64::MIN {
                            n += 1;
                        }
                        var = next.clone();
                    }
                    None => return Ok(n),
                }
            }
        })
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, h: &mut ThreadHandle<B>) -> bool {
        self.len(h) == 0
    }

    /// Collect all keys in order (read-only snapshot).
    pub fn to_vec(&self, h: &mut ThreadHandle<B>) -> Vec<i64> {
        h.atomically(|tx| {
            let mut keys = Vec::new();
            let mut var = self.head.clone();
            loop {
                let node = tx.read(&var)?;
                match &node.next {
                    Some(next) => {
                        if node.key != i64::MIN {
                            keys.push(node.key);
                        }
                        var = next.clone();
                    }
                    None => return Ok(keys),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::FastRng;
    use lsa_time::counter::SharedCounter;
    use lsa_time::perfect::PerfectClock;
    use std::collections::BTreeSet;

    #[test]
    fn sequential_matches_btreeset() {
        let set = IntSetList::new(Stm::new(SharedCounter::new()));
        let mut h = set.stm().clone().register();
        let mut reference = BTreeSet::new();
        let mut rng = FastRng::new(77);
        for _ in 0..400 {
            let key = rng.range(0, 60);
            match rng.below(3) {
                0 => assert_eq!(set.insert(&mut h, key), reference.insert(key)),
                1 => assert_eq!(set.remove(&mut h, key), reference.remove(&key)),
                _ => assert_eq!(set.contains(&mut h, key), reference.contains(&key)),
            }
        }
        assert_eq!(set.len(&mut h), reference.len());
        assert_eq!(set.to_vec(&mut h), reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn keys_stay_sorted_and_unique_under_concurrency() {
        let set = IntSetList::new(Stm::new(PerfectClock::new()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.stm().clone().register();
                    let mut rng = FastRng::new(t as u64 + 1);
                    for _ in 0..300 {
                        let key = rng.range(0, 40);
                        if rng.percent(60) {
                            set.insert(&mut h, key);
                        } else {
                            set.remove(&mut h, key);
                        }
                    }
                });
            }
        });
        let mut h = set.stm().clone().register();
        let keys = set.to_vec(&mut h);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "list must stay sorted and duplicate-free");
    }

    #[test]
    fn concurrent_inserts_of_disjoint_ranges_all_land() {
        let set = IntSetList::new(Stm::new(SharedCounter::new()));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.stm().clone().register();
                    for k in 0..50 {
                        assert!(set.insert(&mut h, t * 1000 + k));
                    }
                });
            }
        });
        let mut h = set.stm().clone().register();
        assert_eq!(set.len(&mut h), 200);
    }

    #[test]
    fn delete_vs_insert_race_preserves_reachability() {
        // The remove() write to the victim node forces conflicts with
        // inserts that would otherwise link behind an unlinked node.
        let set = IntSetList::new(Stm::new(PerfectClock::new()));
        let mut h = set.stm().clone().register();
        for k in [10, 20, 30] {
            set.insert(&mut h, k);
        }
        std::thread::scope(|s| {
            let set_a = &set;
            s.spawn(move || {
                let mut h = set_a.stm().clone().register();
                for _ in 0..200 {
                    set_a.remove(&mut h, 20);
                    set_a.insert(&mut h, 20);
                }
            });
            let set_b = &set;
            s.spawn(move || {
                let mut h = set_b.stm().clone().register();
                for _ in 0..200 {
                    set_b.insert(&mut h, 25);
                    set_b.remove(&mut h, 25);
                }
            });
        });
        let keys = set.to_vec(&mut h);
        assert!(keys.contains(&10) && keys.contains(&30));
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
