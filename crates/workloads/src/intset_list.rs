//! Transactional sorted linked-list integer set.
//!
//! The classic STM data-structure benchmark (used by DSTM, LSA-STM, TL2 …):
//! operations traverse the list inside a transaction, so the read set grows
//! linearly with the traversal length — the workload that makes per-access
//! consistency costs visible and that rewards time-based STMs (O(1) per
//! access) over validation-based ones (O(n) per access).
//!
//! Nodes are immutable values in engine vars linked through `Option<Var>`;
//! updates replace a node's value functionally (its key stays, its `next`
//! changes), so concurrent snapshot readers keep traversing their own
//! consistent version of the list. The structure is generic over the
//! [`TxnEngine`], which is exactly what makes the validation-cost comparison
//! (EXP-VAL) an apples-to-apples sweep.

use crate::rng::FastRng;
use lsa_engine::{EngineAbort, EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};
use std::sync::Arc;

/// One list node: a key and the link to the next node.
pub struct Node<E: TxnEngine> {
    key: i64,
    next: Option<EngineVar<E, Node<E>>>,
}

impl<E: TxnEngine> Clone for Node<E> {
    fn clone(&self) -> Self {
        Node {
            key: self.key,
            next: self.next.clone(),
        }
    }
}

/// A sorted linked-list set of `i64` keys (head/tail sentinels at ±∞).
pub struct IntSetList<E: TxnEngine> {
    engine: E,
    head: EngineVar<E, Node<E>>,
}

impl<E: TxnEngine> Clone for IntSetList<E> {
    fn clone(&self) -> Self {
        IntSetList {
            engine: self.engine.clone(),
            head: self.head.clone(),
        }
    }
}

impl<E: TxnEngine> IntSetList<E> {
    /// Empty set on `engine`.
    pub fn new(engine: E) -> Self {
        let tail = engine.new_var(Node {
            key: i64::MAX,
            next: None,
        });
        let head = engine.new_var(Node {
            key: i64::MIN,
            next: Some(tail),
        });
        IntSetList { engine, head }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Locate `key`: returns (node-var of the last node with a smaller key,
    /// its value, node-var of the first node with key ≥ `key`, its value).
    #[allow(clippy::type_complexity)]
    fn locate<O: TxnOps<Engine = E>>(
        &self,
        tx: &mut O,
        key: i64,
    ) -> Result<
        (
            EngineVar<E, Node<E>>,
            Arc<Node<E>>,
            EngineVar<E, Node<E>>,
            Arc<Node<E>>,
        ),
        EngineAbort<E>,
    > {
        let mut prev_var = self.head.clone();
        let mut prev = tx.read(&prev_var)?;
        loop {
            let cur_var = prev
                .next
                .clone()
                .expect("interior node always has a successor (tail sentinel)");
            let cur = tx.read(&cur_var)?;
            if cur.key >= key {
                return Ok((prev_var, prev, cur_var, cur));
            }
            prev_var = cur_var;
            prev = cur;
        }
    }

    /// Insert `key`; returns `false` if it was already present.
    pub fn insert(&self, h: &mut E::Handle, key: i64) -> bool {
        assert!(
            key > i64::MIN && key < i64::MAX,
            "sentinel keys are reserved"
        );
        h.atomically(|tx| {
            let (prev_var, prev, cur_var, cur) = self.locate(tx, key)?;
            if cur.key == key {
                return Ok(false);
            }
            let new_var = self.engine.new_var(Node {
                key,
                next: Some(cur_var),
            });
            tx.write(
                &prev_var,
                Node {
                    key: prev.key,
                    next: Some(new_var),
                },
            )?;
            Ok(true)
        })
    }

    /// Remove `key`; returns `false` if it was absent.
    pub fn remove(&self, h: &mut E::Handle, key: i64) -> bool {
        h.atomically(|tx| {
            let (prev_var, prev, cur_var, cur) = self.locate(tx, key)?;
            if cur.key != key {
                return Ok(false);
            }
            // Open the victim for writing too: concurrent inserts *after*
            // `cur` would otherwise modify a node we just unlinked.
            tx.write(
                &cur_var,
                Node {
                    key: cur.key,
                    next: cur.next.clone(),
                },
            )?;
            tx.write(
                &prev_var,
                Node {
                    key: prev.key,
                    next: cur.next.clone(),
                },
            )?;
            Ok(true)
        })
    }

    /// Membership test (read-only transaction).
    pub fn contains(&self, h: &mut E::Handle, key: i64) -> bool {
        h.atomically(|tx| {
            let (_, _, _, cur) = self.locate(tx, key)?;
            Ok(cur.key == key)
        })
    }

    /// Number of keys (read-only full traversal).
    pub fn len(&self, h: &mut E::Handle) -> usize {
        h.atomically(|tx| {
            let mut n = 0usize;
            let mut var = self.head.clone();
            loop {
                let node = tx.read(&var)?;
                match &node.next {
                    Some(next) => {
                        if node.key != i64::MIN {
                            n += 1;
                        }
                        var = next.clone();
                    }
                    None => return Ok(n),
                }
            }
        })
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, h: &mut E::Handle) -> bool {
        self.len(h) == 0
    }

    /// Collect all keys in order (read-only snapshot).
    pub fn to_vec(&self, h: &mut E::Handle) -> Vec<i64> {
        h.atomically(|tx| {
            let mut keys = Vec::new();
            let mut var = self.head.clone();
            loop {
                let node = tx.read(&var)?;
                match &node.next {
                    Some(next) => {
                        if node.key != i64::MIN {
                            keys.push(node.key);
                        }
                        var = next.clone();
                    }
                    None => return Ok(keys),
                }
            }
        })
    }
}

/// Parameters of the intset benchmark workload.
#[derive(Clone, Copy, Debug)]
pub struct IntsetConfig {
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: i64,
    /// Number of keys pre-inserted (spread evenly over the range) so
    /// lookups traverse a list of stable expected length.
    pub initial: usize,
    /// Percentage (0–100) of operations that are read-only membership
    /// tests; the rest split evenly between inserts and removes, keeping
    /// the set size stationary.
    pub member_percent: u32,
}

impl Default for IntsetConfig {
    fn default() -> Self {
        IntsetConfig {
            key_range: 256,
            initial: 128,
            member_percent: 60,
        }
    }
}

/// The intset benchmark: the classic member/insert/remove mix over a shared
/// [`IntSetList`]. Every operation traverses the list transactionally, so
/// read sets grow with the traversal length — and on a sharded engine the
/// traversal crosses shard boundaries node after node, which makes this the
/// workload that exercises cross-shard transactions hardest (every update
/// is a multi-shard commit once nodes are spread round-robin).
pub struct IntsetWorkload<E: TxnEngine> {
    set: IntSetList<E>,
    cfg: IntsetConfig,
}

impl<E: TxnEngine> IntsetWorkload<E> {
    /// Create and pre-populate the set on `engine`.
    pub fn new(engine: E, cfg: IntsetConfig) -> Self {
        assert!(cfg.key_range >= 2, "need a non-trivial key range");
        assert!(
            cfg.initial as i64 <= cfg.key_range,
            "cannot seed more keys than the range holds"
        );
        assert!(cfg.member_percent <= 100);
        let set = IntSetList::new(engine);
        let mut h = set.engine().register();
        // Evenly spread seed keys so inserts and removes both find work.
        for i in 0..cfg.initial as i64 {
            let key = i * cfg.key_range / cfg.initial.max(1) as i64;
            set.insert(&mut h, key);
        }
        IntsetWorkload { set, cfg }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        self.set.engine()
    }

    /// The shared set (post-run audits).
    pub fn set(&self) -> &IntSetList<E> {
        &self.set
    }

    /// Assert the structural invariant with a fresh handle: keys sorted and
    /// duplicate-free. Call when no workers run; returns the key count.
    pub fn assert_sorted_unique(&self) -> usize {
        let mut h = self.set.engine().register();
        let keys = self.set.to_vec(&mut h);
        for w in keys.windows(2) {
            assert!(
                w[0] < w[1],
                "intset invariant broken on {}: {:?} !< {:?}",
                self.set.engine().engine_name(),
                w[0],
                w[1]
            );
        }
        keys.len()
    }

    /// Build the worker for thread `tid`.
    pub fn worker(&self, tid: usize) -> IntsetWorker<E> {
        IntsetWorker {
            handle: self.set.engine().register(),
            set: self.set.clone(),
            cfg: self.cfg,
            rng: FastRng::new(0x1275E7 + tid as u64),
        }
    }
}

/// Per-thread intset worker.
pub struct IntsetWorker<E: TxnEngine> {
    handle: E::Handle,
    set: IntSetList<E>,
    cfg: IntsetConfig,
    rng: FastRng,
}

impl<E: TxnEngine> IntsetWorker<E> {
    /// Run one operation: member with probability `member_percent`,
    /// otherwise insert or remove with equal probability.
    pub fn step(&mut self) {
        let key = self.rng.range(0, self.cfg.key_range);
        if self.rng.percent(self.cfg.member_percent) {
            self.set.contains(&mut self.handle, key);
        } else if self.rng.percent(50) {
            self.set.insert(&mut self.handle, key);
        } else {
            self.set.remove(&mut self.handle, key);
        }
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::FastRng;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;
    use lsa_time::perfect::PerfectClock;
    use std::collections::BTreeSet;

    fn sequential_matches_reference<E: TxnEngine>(engine: E) {
        let set = IntSetList::new(engine.clone());
        let mut h = engine.register();
        let mut reference = BTreeSet::new();
        let mut rng = FastRng::new(77);
        for _ in 0..400 {
            let key = rng.range(0, 60);
            match rng.below(3) {
                0 => assert_eq!(set.insert(&mut h, key), reference.insert(key)),
                1 => assert_eq!(set.remove(&mut h, key), reference.remove(&key)),
                _ => assert_eq!(set.contains(&mut h, key), reference.contains(&key)),
            }
        }
        assert_eq!(set.len(&mut h), reference.len());
        assert_eq!(
            set.to_vec(&mut h),
            reference.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_matches_btreeset() {
        sequential_matches_reference(Stm::new(SharedCounter::new()));
    }

    #[test]
    fn sequential_matches_btreeset_on_every_engine() {
        sequential_matches_reference(Tl2Stm::new(SharedCounter::new()));
        sequential_matches_reference(ValidationStm::new(ValidationMode::Always));
        sequential_matches_reference(ValidationStm::new(ValidationMode::CommitCounter));
    }

    #[test]
    fn keys_stay_sorted_and_unique_under_concurrency() {
        let set = IntSetList::new(Stm::new(PerfectClock::new()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.engine().register();
                    let mut rng = FastRng::new(t as u64 + 1);
                    for _ in 0..300 {
                        let key = rng.range(0, 40);
                        if rng.percent(60) {
                            set.insert(&mut h, key);
                        } else {
                            set.remove(&mut h, key);
                        }
                    }
                });
            }
        });
        let mut h = set.engine().register();
        let keys = set.to_vec(&mut h);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "list must stay sorted and duplicate-free");
    }

    #[test]
    fn concurrent_inserts_of_disjoint_ranges_all_land() {
        let set = IntSetList::new(Stm::new(SharedCounter::new()));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.engine().register();
                    for k in 0..50 {
                        assert!(set.insert(&mut h, t * 1000 + k));
                    }
                });
            }
        });
        let mut h = set.engine().register();
        assert_eq!(set.len(&mut h), 200);
    }

    #[test]
    fn concurrent_inserts_all_land_on_tl2() {
        let set = IntSetList::new(Tl2Stm::new(SharedCounter::new()));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.engine().register();
                    for k in 0..40 {
                        assert!(set.insert(&mut h, t * 1000 + k));
                    }
                });
            }
        });
        let mut h = set.engine().register();
        assert_eq!(set.len(&mut h), 160);
    }

    #[test]
    fn intset_workload_preserves_invariants_under_concurrency() {
        let wl = IntsetWorkload::new(
            Stm::new(SharedCounter::new()),
            IntsetConfig {
                key_range: 64,
                initial: 32,
                member_percent: 50,
            },
        );
        assert_eq!(wl.assert_sorted_unique(), 32, "seeding is deterministic");
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut w = wl.worker(t);
                s.spawn(move || {
                    for _ in 0..300 {
                        w.step();
                    }
                    assert!(w.stats().total_commits() >= 300);
                });
            }
        });
        wl.assert_sorted_unique();
    }

    #[test]
    fn intset_workload_all_member_mix_is_read_only() {
        let wl = IntsetWorkload::new(
            Stm::new(SharedCounter::new()),
            IntsetConfig {
                key_range: 32,
                initial: 16,
                member_percent: 100,
            },
        );
        let mut w = wl.worker(0);
        for _ in 0..50 {
            w.step();
        }
        assert_eq!(w.stats().ro_commits, 50);
        assert_eq!(w.stats().commits, 0);
    }

    #[test]
    fn delete_vs_insert_race_preserves_reachability() {
        // The remove() write to the victim node forces conflicts with
        // inserts that would otherwise link behind an unlinked node.
        let set = IntSetList::new(Stm::new(PerfectClock::new()));
        let mut h = set.engine().register();
        for k in [10, 20, 30] {
            set.insert(&mut h, k);
        }
        std::thread::scope(|s| {
            let set_a = &set;
            s.spawn(move || {
                let mut h = set_a.engine().register();
                for _ in 0..200 {
                    set_a.remove(&mut h, 20);
                    set_a.insert(&mut h, 20);
                }
            });
            let set_b = &set;
            s.spawn(move || {
                let mut h = set_b.engine().register();
                for _ in 0..200 {
                    set_b.insert(&mut h, 25);
                    set_b.remove(&mut h, 25);
                }
            });
        });
        let keys = set.to_vec(&mut h);
        assert!(keys.contains(&10) && keys.contains(&30));
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
