//! # lsa-workloads — workload generators for the SPAA'07 evaluation
//!
//! * [`disjoint`] — the paper's §4.2 workload: transactions update `k`
//!   distinct private objects; no logical conflicts, so time-base overhead
//!   dominates (Figure 2),
//! * [`bank`] — transfers + read-only audits; the consistency workload used
//!   by the synchronization-error experiment (§4.3 / EXP-ERR),
//! * [`scan`] — read-only scans over `n` objects; the §1 validation-cost
//!   shape (EXP-VAL), engine-generic,
//! * [`intset_list`] — sorted linked-list set: long traversals, growing read
//!   sets (the validation-cost experiment, EXP-VAL) — plus the
//!   [`intset_list::IntsetWorkload`] member/insert/remove benchmark mix,
//!   the data-structure workload that drives cross-shard transactions in
//!   the engine matrix,
//! * [`snapshot`] — snapshot analytics: long read-only range scans racing a
//!   zero-sum update stream — the multi-version vs single-version
//!   separation workload (and the service bench's "analytics" request),
//! * [`skiplist`] — skip-list set: O(log n) traversals, medium read sets,
//! * [`hashset`] — bucketed hash set: short transactions, tunable contention,
//! * [`placement`] — the [`PlacementHint`] shard-affinity axis: bank and
//!   disjoint can pin their natural partitions shard-locally
//!   (`TxnEngine::new_var_on`) instead of round-robin spreading,
//! * [`rng`] — cheap deterministic randomness for workload threads.
//!
//! Every workload is generic over its engine ([`lsa_engine::TxnEngine`]):
//! the same code runs on LSA-RT, TL2 and the validation STM, which is what
//! lets the harness sweep the full workload × engine × time-base matrix.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod bank;
pub mod disjoint;
pub mod hashset;
pub mod intset_list;
pub mod placement;
pub mod rng;
pub mod scan;
pub mod skiplist;
pub mod snapshot;

pub use bank::{BankConfig, BankWorker, BankWorkload};
pub use disjoint::{DisjointConfig, DisjointWorker, DisjointWorkload};
pub use hashset::{HashSetT, HashsetConfig, HashsetWorker, HashsetWorkload};
pub use intset_list::{IntSetList, IntsetConfig, IntsetWorker, IntsetWorkload};
pub use placement::PlacementHint;
pub use rng::FastRng;
pub use scan::{ScanConfig, ScanWorker, ScanWorkload};
pub use skiplist::SkipListSet;
pub use snapshot::{SnapshotConfig, SnapshotWorker, SnapshotWorkload};
