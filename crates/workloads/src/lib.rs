//! # lsa-workloads — workload generators for the SPAA'07 evaluation
//!
//! * [`disjoint`] — the paper's §4.2 workload: transactions update `k`
//!   distinct private objects; no logical conflicts, so time-base overhead
//!   dominates (Figure 2),
//! * [`bank`] — transfers + read-only audits; the consistency workload used
//!   by the synchronization-error experiment (§4.3 / EXP-ERR),
//! * [`scan`] — read-only scans over `n` objects; the §1 validation-cost
//!   shape (EXP-VAL), engine-generic,
//! * [`intset_list`] — sorted linked-list set: long traversals, growing read
//!   sets (the validation-cost experiment, EXP-VAL) — plus the
//!   [`intset_list::IntsetWorkload`] member/insert/remove benchmark mix,
//!   the data-structure workload that drives cross-shard transactions in
//!   the engine matrix,
//! * [`skiplist`] — skip-list set: O(log n) traversals, medium read sets,
//! * [`hashset`] — bucketed hash set: short transactions, tunable contention,
//! * [`rng`] — cheap deterministic randomness for workload threads.
//!
//! Every workload is generic over its engine ([`lsa_engine::TxnEngine`]):
//! the same code runs on LSA-RT, TL2 and the validation STM, which is what
//! lets the harness sweep the full workload × engine × time-base matrix.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod bank;
pub mod disjoint;
pub mod hashset;
pub mod intset_list;
pub mod rng;
pub mod scan;
pub mod skiplist;

pub use bank::{BankConfig, BankWorker, BankWorkload};
pub use disjoint::{DisjointConfig, DisjointWorker, DisjointWorkload};
pub use hashset::HashSetT;
pub use intset_list::{IntSetList, IntsetConfig, IntsetWorker, IntsetWorkload};
pub use rng::FastRng;
pub use scan::{ScanConfig, ScanWorker, ScanWorkload};
pub use skiplist::SkipListSet;
