//! Object placement hints for sharded engines.
//!
//! The sharded runtime routes `new_var` round-robin across shards, so a
//! workload's working set spreads uniformly and most multi-object
//! transactions cross shards (escalating to the cross-shard commit
//! protocol). [`PlacementHint::Partitioned`] asks the workload to pin its
//! natural partitions shard-locally through
//! [`lsa_engine::TxnEngine::new_var_on`] instead — bank account groups and
//! disjoint per-thread partitions each live on one shard, transactions stay
//! single-shard, and the matrix can contrast `partitioned` vs `spread`
//! routing (the ROADMAP's shard-affine placement item). On unsharded
//! engines the hint is inert: `new_var_on` degenerates to `new_var`.

/// How a workload places its objects across an engine's shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementHint {
    /// Engine-default routing (round-robin on sharded engines): the
    /// uniformly-spread baseline.
    #[default]
    Spread,
    /// Pin each workload partition to one shard via `new_var_on`, and keep
    /// transactions partition-local where the workload's semantics allow.
    Partitioned,
}

impl PlacementHint {
    /// Short name for tables and CLI parsing.
    pub fn name(self) -> &'static str {
        match self {
            PlacementHint::Spread => "spread",
            PlacementHint::Partitioned => "partitioned",
        }
    }

    /// Parse a CLI argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "spread" => Some(PlacementHint::Spread),
            "partitioned" => Some(PlacementHint::Partitioned),
            _ => None,
        }
    }
}

impl std::fmt::Display for PlacementHint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints() {
        assert_eq!(PlacementHint::parse("spread"), Some(PlacementHint::Spread));
        assert_eq!(
            PlacementHint::parse("partitioned"),
            Some(PlacementHint::Partitioned)
        );
        assert_eq!(PlacementHint::parse("bogus"), None);
        assert_eq!(PlacementHint::default().to_string(), "spread");
    }
}
