//! Small deterministic RNG utilities for workload generation.
//!
//! Workload threads need cheap, allocation-free, seedable randomness whose
//! cost does not distort the throughput measurements; `rand`'s `StdRng` is
//! used where statistical quality matters (key distributions), and the
//! xorshift here where speed matters (per-transaction choices).

/// Xorshift64*: 8 bytes of state, ~1 ns per draw, passes SmallCrush — plenty
/// for choosing workload targets.
#[derive(Clone, Debug)]
pub struct FastRng(u64);

impl FastRng {
    /// Seeded generator. A zero seed is mapped to a fixed non-zero value.
    pub fn new(seed: u64) -> Self {
        FastRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Bernoulli draw: true with probability `percent`/100.
    #[inline]
    pub fn percent(&mut self, percent: u32) -> bool {
        (self.next_u64() % 100) < u64::from(percent)
    }

    /// Choose `k` distinct indices out of `[0, n)` (k ≤ n), Floyd's
    /// algorithm, into `out` (cleared first).
    pub fn distinct(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        debug_assert!(k <= n);
        out.clear();
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FastRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = FastRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn distinct_draws_are_distinct_and_k_sized() {
        let mut r = FastRng::new(3);
        let mut out = Vec::new();
        for _ in 0..200 {
            r.distinct(50, 10, &mut out);
            assert_eq!(out.len(), 10);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "indices must be distinct");
            assert!(sorted.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn distinct_full_range() {
        let mut r = FastRng::new(9);
        let mut out = Vec::new();
        r.distinct(5, 5, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn percent_extremes() {
        let mut r = FastRng::new(11);
        for _ in 0..100 {
            assert!(!r.percent(0));
            assert!(r.percent(100));
        }
    }
}
