//! Read-only scan workload: the §1 validation-cost shape.
//!
//! Every transaction reads all `n` objects and sums them. Nothing ever
//! writes, so the workload isolates the pure *per-access consistency cost*:
//! time-based engines read at O(1) per access, validation-based engines pay
//! O(read-set) per access ("the validation overhead grows linearly with the
//! number of objects a transaction has read so far"), and the harness
//! divides elapsed time by [`lsa_engine::EngineStats::reads`] to report
//! ns/object per engine — the EXP-VAL experiment, now engine-generic.
//!
//! The objects are seeded with their index, so every scan doubles as a
//! consistency check: any torn snapshot breaks the arithmetic-series sum.

use lsa_engine::{EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};

/// Parameters of the read-only scan workload.
#[derive(Clone, Copy, Debug)]
pub struct ScanConfig {
    /// Number of objects each transaction reads.
    pub objects: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig { objects: 100 }
    }
}

/// The shared workload state: `n` objects holding their own index.
pub struct ScanWorkload<E: TxnEngine> {
    engine: E,
    vars: Vec<EngineVar<E, u64>>,
}

impl<E: TxnEngine> ScanWorkload<E> {
    /// Allocate the objects on `engine`, seeded `0..n`.
    pub fn new(engine: E, cfg: ScanConfig) -> Self {
        assert!(cfg.objects >= 1);
        let vars = (0..cfg.objects as u64).map(|i| engine.new_var(i)).collect();
        ScanWorkload { engine, vars }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The invariant sum every scan must observe: `0 + 1 + … + (n-1)`.
    pub fn expected_sum(&self) -> u64 {
        let n = self.vars.len() as u64;
        n * (n - 1) / 2
    }

    /// Build a per-thread worker.
    pub fn worker(&self, _tid: usize) -> ScanWorker<E> {
        ScanWorker {
            handle: self.engine.register(),
            vars: self.vars.clone(),
            expected: self.expected_sum(),
        }
    }
}

/// Per-thread worker of the scan workload.
pub struct ScanWorker<E: TxnEngine> {
    handle: E::Handle,
    vars: Vec<EngineVar<E, u64>>,
    expected: u64,
}

impl<E: TxnEngine> ScanWorker<E> {
    /// Run one read-only scan and check the invariant sum.
    pub fn step(&mut self) {
        let vars = &self.vars;
        let sum = self.handle.atomically(|tx| {
            let mut s = 0u64;
            for v in vars {
                s += *tx.read(v)?;
            }
            Ok(s)
        });
        assert_eq!(sum, self.expected, "scan observed a torn snapshot");
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }

    /// The underlying engine handle, for engine-specific introspection.
    pub fn handle(&self) -> &E::Handle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::{NorecStm, ValidationMode, ValidationStm};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;

    #[test]
    fn scans_are_read_only_and_consistent() {
        let wl = ScanWorkload::new(Stm::new(SharedCounter::new()), ScanConfig { objects: 32 });
        let mut w = wl.worker(0);
        for _ in 0..10 {
            w.step();
        }
        let s = w.stats();
        assert_eq!(s.ro_commits, 10);
        assert_eq!(s.commits, 0);
        assert_eq!(s.reads, 10 * 32);
    }

    #[test]
    fn scan_runs_on_validation_engines_too() {
        for mode in [ValidationMode::Always, ValidationMode::CommitCounter] {
            let wl = ScanWorkload::new(ValidationStm::new(mode), ScanConfig { objects: 16 });
            let mut w = wl.worker(0);
            for _ in 0..5 {
                w.step();
            }
            assert_eq!(w.stats().reads, 5 * 16);
        }
        let wl = ScanWorkload::new(NorecStm::new(), ScanConfig { objects: 16 });
        let mut w = wl.worker(0);
        w.step();
        assert_eq!(w.stats().ro_commits, 1);
    }

    #[test]
    fn expected_sum_matches_series() {
        let wl = ScanWorkload::new(Stm::new(SharedCounter::new()), ScanConfig { objects: 5 });
        assert_eq!(wl.expected_sum(), 10);
    }
}
