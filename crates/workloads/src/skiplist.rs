//! Transactional skip-list integer set.
//!
//! The logarithmic counterpart to [`crate::intset_list`]: traversals touch
//! O(log n) nodes instead of O(n), so transactions have medium-sized read
//! sets and conflicts concentrate on the upper levels. Deterministic tower
//! heights (drawn from a seeded RNG at insert time) keep runs reproducible.
//!
//! Each node's forward pointers live in a single engine var holding an
//! immutable `Tower` (a small vector of successor links); updates replace
//! whole towers functionally, which keeps concurrent snapshot readers on
//! consistent versions — the same pattern as the linked list, generalized to
//! multiple levels. Generic over the [`TxnEngine`] like every workload here.

use crate::rng::FastRng;
use lsa_engine::{EngineAbort, EngineHandle, EngineVar, TxnEngine, TxnOps};
use std::sync::Arc;

/// Maximum tower height (enough for millions of keys at p = 1/2).
pub const MAX_LEVEL: usize = 16;

/// A node's payload: its key plus one successor link per level.
pub struct Tower<E: TxnEngine> {
    key: i64,
    /// `next[l]` is the successor at level `l`; `None` = list end.
    next: Vec<Option<NodeRef<E>>>,
}

impl<E: TxnEngine> Clone for Tower<E> {
    fn clone(&self) -> Self {
        Tower {
            key: self.key,
            next: self.next.clone(),
        }
    }
}

type NodeRef<E> = Arc<SkipNode<E>>;

/// A skip-list node: an immutable identity wrapping the transactional tower.
pub struct SkipNode<E: TxnEngine> {
    tower: EngineVar<E, Tower<E>>,
}

/// A sorted skip-list set of `i64` keys with transactional operations.
pub struct SkipListSet<E: TxnEngine> {
    engine: E,
    head: NodeRef<E>,
}

impl<E: TxnEngine> SkipListSet<E> {
    /// Empty set on `engine`.
    pub fn new(engine: E) -> Self {
        let head_tower = Tower {
            key: i64::MIN,
            next: vec![None; MAX_LEVEL],
        };
        let head = Arc::new(SkipNode {
            tower: engine.new_var(head_tower),
        });
        SkipListSet { engine, head }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Deterministic tower height for the `n`-th insert of a given seed
    /// stream: geometric with p = 1/2, capped at [`MAX_LEVEL`].
    fn height(rng: &mut FastRng) -> usize {
        let mut h = 1;
        while h < MAX_LEVEL && rng.percent(50) {
            h += 1;
        }
        h
    }

    /// Find, per level, the last node with `key < target` (the update path).
    /// Returns `(preds, preds_towers, successor_at_level_0)`.
    #[allow(clippy::type_complexity)]
    fn find_preds<O: TxnOps<Engine = E>>(
        &self,
        tx: &mut O,
        target: i64,
    ) -> Result<(Vec<NodeRef<E>>, Vec<Arc<Tower<E>>>, Option<NodeRef<E>>), EngineAbort<E>> {
        let mut preds: Vec<NodeRef<E>> = Vec::with_capacity(MAX_LEVEL);
        let mut towers: Vec<Arc<Tower<E>>> = Vec::with_capacity(MAX_LEVEL);
        let mut node = Arc::clone(&self.head);
        let mut tower = tx.read(&node.tower)?;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let Some(next) = tower.next[level].clone() else {
                    break;
                };
                let next_tower = tx.read(&next.tower)?;
                if next_tower.key < target {
                    node = next;
                    tower = next_tower;
                } else {
                    break;
                }
            }
            preds.push(Arc::clone(&node));
            towers.push(Arc::clone(&tower));
        }
        preds.reverse();
        towers.reverse();
        let succ = towers[0].next[0].clone();
        Ok((preds, towers, succ))
    }

    /// Insert `key`; returns `false` if already present. `rng` drives the
    /// tower height (pass a per-thread [`FastRng`]).
    pub fn insert(&self, h: &mut E::Handle, rng: &mut FastRng, key: i64) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys reserved");
        let height = Self::height(rng);
        h.atomically(|tx| {
            let (preds, towers, succ) = self.find_preds(tx, key)?;
            if let Some(s) = &succ {
                if tx.read(&s.tower)?.key == key {
                    return Ok(false);
                }
            }
            // Build the new node's tower from the predecessors' successors.
            let mut next = vec![None; MAX_LEVEL];
            #[allow(clippy::needless_range_loop)]
            for level in 0..height {
                next[level] = towers[level].next[level].clone();
            }
            let new_node = Arc::new(SkipNode {
                tower: self.engine.new_var(Tower { key, next }),
            });
            // Splice into every level it occupies (deduplicating writes when
            // one pred covers several levels).
            for (level, pred) in preds.iter().enumerate().take(height) {
                let cur = tx.read(&pred.tower)?;
                let mut nt = (*cur).clone();
                nt.next[level] = Some(Arc::clone(&new_node));
                tx.write(&pred.tower, nt)?;
            }
            Ok(true)
        })
    }

    /// Remove `key`; returns `false` if absent.
    pub fn remove(&self, h: &mut E::Handle, key: i64) -> bool {
        h.atomically(|tx| {
            let (preds, _towers, succ) = self.find_preds(tx, key)?;
            let Some(victim) = succ else { return Ok(false) };
            let vt = tx.read(&victim.tower)?;
            if vt.key != key {
                return Ok(false);
            }
            // Unlink at every level where a pred points at the victim;
            // write the victim too so concurrent splices conflict with us.
            for (level, pred) in preds.iter().enumerate() {
                let cur = tx.read(&pred.tower)?;
                if let Some(n) = &cur.next[level] {
                    if Arc::ptr_eq(n, &victim) {
                        let mut nt = (*cur).clone();
                        nt.next[level] = vt.next[level].clone();
                        tx.write(&pred.tower, nt)?;
                    }
                }
            }
            tx.write(&victim.tower, (*vt).clone())?;
            Ok(true)
        })
    }

    /// Membership test (read-only transaction).
    pub fn contains(&self, h: &mut E::Handle, key: i64) -> bool {
        h.atomically(|tx| {
            let (_, _, succ) = self.find_preds(tx, key)?;
            match succ {
                Some(s) => Ok(tx.read(&s.tower)?.key == key),
                None => Ok(false),
            }
        })
    }

    /// All keys in ascending order (one read-only snapshot).
    pub fn to_vec(&self, h: &mut E::Handle) -> Vec<i64> {
        h.atomically(|tx| {
            let mut keys = Vec::new();
            let mut cursor = tx.read(&self.head.tower)?.next[0].clone();
            while let Some(node) = cursor {
                let t = tx.read(&node.tower)?;
                keys.push(t.key);
                cursor = t.next[0].clone();
            }
            Ok(keys)
        })
    }

    /// Number of keys (read-only snapshot).
    pub fn len(&self, h: &mut E::Handle) -> usize {
        self.to_vec(h).len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self, h: &mut E::Handle) -> bool {
        self.len(h) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::{Tl2Stm, ValidationMode, ValidationStm};
    use lsa_stm::Stm;
    use lsa_time::counter::SharedCounter;
    use lsa_time::perfect::PerfectClock;
    use std::collections::BTreeSet;

    fn sequential_matches_reference<E: TxnEngine>(engine: E) {
        let set = SkipListSet::new(engine.clone());
        let mut h = engine.register();
        let mut rng = FastRng::new(99);
        let mut height_rng = FastRng::new(7);
        let mut reference = BTreeSet::new();
        for _ in 0..600 {
            let key = rng.range(0, 120);
            match rng.below(3) {
                0 => assert_eq!(
                    set.insert(&mut h, &mut height_rng, key),
                    reference.insert(key)
                ),
                1 => assert_eq!(set.remove(&mut h, key), reference.remove(&key)),
                _ => assert_eq!(set.contains(&mut h, key), reference.contains(&key)),
            }
        }
        assert_eq!(
            set.to_vec(&mut h),
            reference.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_matches_btreeset() {
        sequential_matches_reference(Stm::new(SharedCounter::new()));
    }

    #[test]
    fn sequential_matches_btreeset_on_every_engine() {
        sequential_matches_reference(Tl2Stm::new(SharedCounter::new()));
        sequential_matches_reference(ValidationStm::new(ValidationMode::CommitCounter));
    }

    #[test]
    fn stays_sorted_unique_under_concurrency() {
        let set = SkipListSet::new(Stm::new(PerfectClock::new()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.engine().register();
                    let mut rng = FastRng::new(t as u64 + 1);
                    let mut hr = FastRng::new(t as u64 + 100);
                    for _ in 0..250 {
                        let key = rng.range(0, 64);
                        if rng.percent(60) {
                            set.insert(&mut h, &mut hr, key);
                        } else {
                            set.remove(&mut h, key);
                        }
                    }
                });
            }
        });
        let mut h = set.engine().register();
        let keys = set.to_vec(&mut h);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "skip list must stay sorted and unique");
        // Structural invariant: every key present at level 0 is reachable.
        for &k in &keys {
            assert!(set.contains(&mut h, k));
        }
    }

    #[test]
    fn disjoint_concurrent_inserts_all_land() {
        let set = SkipListSet::new(Stm::new(SharedCounter::new()));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.engine().register();
                    let mut hr = FastRng::new(t as u64 + 5);
                    for k in 0..60 {
                        assert!(set.insert(&mut h, &mut hr, t * 1000 + k));
                    }
                });
            }
        });
        let mut h = set.engine().register();
        assert_eq!(set.len(&mut h), 240);
    }

    #[test]
    fn towers_never_exceed_max_level() {
        let mut rng = FastRng::new(1);
        for _ in 0..10_000 {
            let h = SkipListSet::<Stm<SharedCounter>>::height(&mut rng);
            assert!((1..=MAX_LEVEL).contains(&h));
        }
    }

    #[test]
    fn remove_then_insert_same_key_roundtrips() {
        let set = SkipListSet::new(Stm::new(SharedCounter::new()));
        let mut h = set.engine().register();
        let mut hr = FastRng::new(3);
        assert!(set.insert(&mut h, &mut hr, 42));
        assert!(set.remove(&mut h, 42));
        assert!(!set.contains(&mut h, 42));
        assert!(set.insert(&mut h, &mut hr, 42));
        assert!(set.contains(&mut h, 42));
        assert_eq!(set.to_vec(&mut h), vec![42]);
    }
}
