//! Snapshot-analytics workload: long read-only scans racing an update
//! stream — the separation workload for multi-version vs single-version
//! engines (and the service bench's "analytics" request type).
//!
//! A metrics table of `keys` objects is updated by zero-sum transfers
//! (bump one entry, debit another), so every consistent snapshot of the
//! *whole* table sums to zero. Most steps are analytics: one read-only
//! transaction scanning a contiguous window of `scan_window` keys. On a
//! multi-version LSA the scan finishes *in the past* on a version-chain
//! snapshot however fast the updates churn; single-version engines must
//! abort it whenever an update overwrites a scanned key mid-flight — the
//! §4.3 motivation, measurable as the abort-ratio gap between engines on
//! the same row of the matrix.
//!
//! Read-mostly by construction: `scan_percent` of steps scan (default 90),
//! the rest update.

use crate::rng::FastRng;
use lsa_engine::{EngineHandle, EngineStats, EngineVar, TxnEngine, TxnOps};

/// Parameters of the snapshot-analytics workload.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotConfig {
    /// Size of the metrics table.
    pub keys: usize,
    /// Percentage (0–100) of steps that are read-only analytics scans.
    pub scan_percent: u32,
    /// Keys each scan reads (contiguous, wrapping). Clamped to `keys`.
    /// Full-table scans additionally assert the zero-sum invariant.
    pub scan_window: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            keys: 256,
            scan_percent: 90,
            scan_window: 256,
        }
    }
}

/// Shared state: the metrics table.
pub struct SnapshotWorkload<E: TxnEngine> {
    engine: E,
    cfg: SnapshotConfig,
    vars: Vec<EngineVar<E, i64>>,
}

impl<E: TxnEngine> SnapshotWorkload<E> {
    /// Allocate the table on `engine`, all entries zero.
    pub fn new(engine: E, mut cfg: SnapshotConfig) -> Self {
        assert!(cfg.keys >= 2);
        assert!(cfg.scan_percent <= 100);
        cfg.scan_window = cfg.scan_window.clamp(1, cfg.keys);
        let vars = (0..cfg.keys).map(|_| engine.new_var(0i64)).collect();
        SnapshotWorkload { engine, cfg, vars }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The workload parameters (post-clamping).
    pub fn config(&self) -> SnapshotConfig {
        self.cfg
    }

    /// Quiescent table sum — zero by the transfer invariant (call when no
    /// workers run).
    pub fn quiescent_sum(&self) -> i64 {
        self.vars.iter().map(|v| *E::peek(v)).sum()
    }

    /// The metrics-table variables — what the transaction service builds
    /// its analytics/update request closures over.
    pub fn vars(&self) -> &[EngineVar<E, i64>] {
        &self.vars
    }

    /// Build the worker for thread `tid`.
    pub fn worker(&self, tid: usize) -> SnapshotWorker<E> {
        SnapshotWorker {
            handle: self.engine.register(),
            vars: self.vars.clone(),
            cfg: self.cfg,
            rng: FastRng::new(0x5CA7 + tid as u64),
        }
    }
}

/// Per-thread worker of the snapshot-analytics workload.
pub struct SnapshotWorker<E: TxnEngine> {
    handle: E::Handle,
    vars: Vec<EngineVar<E, i64>>,
    cfg: SnapshotConfig,
    rng: FastRng,
}

impl<E: TxnEngine> SnapshotWorker<E> {
    /// Run one step: an analytics scan with probability `scan_percent`,
    /// otherwise one zero-sum update transfer.
    pub fn step(&mut self) {
        if self.rng.percent(self.cfg.scan_percent) {
            let n = self.vars.len();
            let window = self.cfg.scan_window;
            let start = self.rng.below(n);
            let vars = &self.vars;
            let sum = self.handle.atomically(|tx| {
                let mut s = 0i64;
                for off in 0..window {
                    s += *tx.read(&vars[(start + off) % n])?;
                }
                Ok(s)
            });
            if window == n {
                // A full-table scan is a consistency witness: any torn
                // snapshot breaks the zero-sum invariant.
                assert_eq!(sum, 0, "analytics scan observed a torn snapshot");
            }
        } else {
            let i = self.rng.below(self.vars.len());
            let mut j = self.rng.below(self.vars.len());
            if j == i {
                j = (j + 1) % self.vars.len();
            }
            let amount = self.rng.range(1, 50);
            let (a, b) = (self.vars[i].clone(), self.vars[j].clone());
            self.handle.atomically(|tx| {
                tx.modify(&a, |v| v + amount)?;
                tx.modify(&b, |v| v - amount)
            });
        }
    }

    /// Accumulated statistics on the engine-shared surface.
    pub fn stats(&self) -> EngineStats {
        self.handle.engine_stats()
    }

    /// Take (and reset) statistics.
    pub fn take_stats(&mut self) -> EngineStats {
        self.handle.take_engine_stats()
    }

    /// The underlying engine handle, for engine-specific introspection.
    pub fn handle(&self) -> &E::Handle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsa_baseline::Tl2Stm;
    use lsa_stm::{Stm, StmConfig};
    use lsa_time::counter::SharedCounter;

    #[test]
    fn read_mostly_mix_and_invariant() {
        let wl = SnapshotWorkload::new(
            Stm::new(SharedCounter::new()),
            SnapshotConfig {
                keys: 32,
                scan_percent: 75,
                scan_window: 32,
            },
        );
        let mut w = wl.worker(0);
        for _ in 0..200 {
            w.step();
        }
        let s = w.stats();
        assert_eq!(s.total_commits(), 200);
        assert!(
            s.ro_commits > s.commits,
            "scan-dominated mix must be read-mostly (ro={} vs rw={})",
            s.ro_commits,
            s.commits
        );
        assert_eq!(wl.quiescent_sum(), 0);
    }

    #[test]
    fn window_clamps_to_table() {
        let wl = SnapshotWorkload::new(
            Stm::new(SharedCounter::new()),
            SnapshotConfig {
                keys: 8,
                scan_percent: 100,
                scan_window: 1_000,
            },
        );
        assert_eq!(wl.config().scan_window, 8);
        let mut w = wl.worker(0);
        w.step();
        assert_eq!(w.stats().reads, 8);
    }

    fn concurrent_scans_stay_consistent<E: TxnEngine>(engine: E) {
        let wl = SnapshotWorkload::new(
            engine,
            SnapshotConfig {
                keys: 64,
                scan_percent: 60,
                scan_window: 64,
            },
        );
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut w = wl.worker(t);
                s.spawn(move || {
                    for _ in 0..150 {
                        w.step();
                    }
                });
            }
        });
        assert_eq!(wl.quiescent_sum(), 0);
    }

    #[test]
    fn concurrent_scans_on_multi_version_lsa() {
        concurrent_scans_stay_consistent(Stm::with_config(
            SharedCounter::new(),
            StmConfig::multi_version(8),
        ));
    }

    #[test]
    fn concurrent_scans_on_tl2() {
        concurrent_scans_stay_consistent(Tl2Stm::new(SharedCounter::new()));
    }

    /// The separation claim itself: under the same update pressure, the
    /// multi-version engine finishes scans without aborting them while a
    /// single-version engine pays scan aborts. Smoke-sized so it stays
    /// deterministic enough for CI: we only assert the qualitative gap
    /// (multi-version scan aborts strictly fewer than single-version).
    #[test]
    fn multi_version_scans_abort_less_than_single_version() {
        fn scan_aborts<E: TxnEngine>(engine: E) -> u64 {
            let wl = SnapshotWorkload::new(
                engine,
                SnapshotConfig {
                    keys: 128,
                    scan_percent: 50,
                    scan_window: 128,
                },
            );
            let totals: u64 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..3)
                    .map(|t| {
                        let mut w = wl.worker(t);
                        s.spawn(move || {
                            for _ in 0..300 {
                                w.step();
                            }
                            w.stats().aborts
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            totals
        }
        let mv = scan_aborts(Stm::with_config(
            SharedCounter::new(),
            StmConfig::multi_version(16),
        ));
        let sv = scan_aborts(Tl2Stm::new(SharedCounter::new()));
        assert!(
            mv <= sv,
            "multi-version LSA must not abort more than single-version TL2 \
             on analytics scans (mv={mv}, sv={sv})"
        );
    }
}
