//! End-to-end externally-synchronized-clock workflow (§3.2):
//!
//! 1. simulate a software clock-synchronization protocol to find the
//!    achievable deviation bound `dev`,
//! 2. build an [`ExternalClock`] ensemble advertising that bound (with real
//!    injected per-thread offsets),
//! 3. measure its offsets/errors with the Figure 1 methodology,
//! 4. run transactions on it and show consistency still holds while the
//!    abort profile reflects the `2·dev` validity gaps.
//!
//! Run with: `cargo run --release --example clock_sync`

use lsa_rt::prelude::*;
use lsa_rt::time::external::OffsetPolicy;
use lsa_rt::time::sync_measure::{measure, summarize, SyncMeasureConfig};
use lsa_rt::time::sync_sim::{achievable_dev, SyncSimConfig};
use std::time::Duration;

fn main() {
    // 1. What dev can software synchronization achieve?
    let sim = SyncSimConfig {
        nodes: 8,
        max_drift_ppm: 50.0,
        ..Default::default()
    };
    let dev_ns = achievable_dev(&sim);
    println!(
        "software sync simulation says dev = {} us is achievable",
        dev_ns / 1_000
    );

    // 2-3. Build the ensemble and measure it like Figure 1.
    let tb = ExternalClock::with_policy(dev_ns, OffsetPolicy::Alternating);
    let rounds = measure(
        &tb,
        &SyncMeasureConfig {
            probes: 2,
            rounds: 10,
            round_interval: Duration::from_millis(2),
        },
    );
    let s = summarize(&rounds);
    println!(
        "measured: worst offset {} ns (injected bound 2*dev = {} ns), worst error {} ns",
        s.worst_abs_offset,
        2 * dev_ns,
        s.worst_error
    );

    // 4. Transactions on uncertain clocks.
    let stm = Stm::new(tb);
    let counters: Vec<_> = (0..16).map(|_| stm.new_tvar(0u64)).collect();
    std::thread::scope(|sc| {
        for t in 0..4usize {
            let stm = stm.clone();
            let counters = counters.clone();
            sc.spawn(move || {
                let mut th = stm.register();
                for i in 0..5_000 {
                    let c = counters[(t * 7 + i) % counters.len()].clone();
                    th.atomically(|tx| tx.modify(&c, |v| v + 1));
                }
                println!("thread {t}: {}", th.stats());
            });
        }
    });
    let total: u64 = counters.iter().map(|c| *c.snapshot_latest()).sum();
    println!("total increments: {total} (expected 20000)");
    assert_eq!(total, 20_000);
}
