//! Transactional data structures under contention: sorted linked-list set
//! and hash set, across contention-management policies.
//!
//! The linked list produces long traversals (big read sets) and frequent
//! write-write conflicts near the head — the workload contention managers
//! were invented for (§2.3).
//!
//! Run with: `cargo run --release --example intset`

use lsa_rt::prelude::*;
use lsa_rt::workloads::{FastRng, HashSetT, IntSetList};
use std::time::Instant;

fn list_run(cm_label: &str, stm: Stm<PerfectClock>) {
    let set = IntSetList::new(stm);
    let mut h = set.engine().register();
    for k in (0..128).step_by(2) {
        set.insert(&mut h, k);
    }
    let start = Instant::now();
    let (ops, aborts) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let set = &set;
                s.spawn(move || {
                    let mut h = set.engine().register();
                    let mut rng = FastRng::new(t as u64 + 42);
                    let ops = 2_000;
                    for _ in 0..ops {
                        let key = rng.range(0, 128);
                        match rng.below(10) {
                            0..=3 => {
                                set.insert(&mut h, key);
                            }
                            4..=7 => {
                                set.remove(&mut h, key);
                            }
                            _ => {
                                set.contains(&mut h, key);
                            }
                        }
                    }
                    (ops as u64, h.stats().total_aborts())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |acc, r| (acc.0 + r.0, acc.1 + r.1))
    });
    let elapsed = start.elapsed();
    let keys = set.to_vec(&mut h);
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "list stays sorted+unique"
    );
    println!(
        "{cm_label:>12}: {:>8.0} list-ops/s, {aborts} aborts, {} keys left",
        ops as f64 / elapsed.as_secs_f64(),
        keys.len()
    );
}

fn main() {
    println!("sorted linked-list set, 4 threads, 80% updates:");
    list_run("polite", Stm::new(PerfectClock::new()));
    list_run(
        "aggressive",
        Stm::with_cm(PerfectClock::new(), StmConfig::default(), Aggressive),
    );
    list_run(
        "karma",
        Stm::with_cm(PerfectClock::new(), StmConfig::default(), Karma),
    );
    list_run(
        "timestamp",
        Stm::with_cm(
            PerfectClock::new(),
            StmConfig::default(),
            TimestampCm::default(),
        ),
    );

    println!("\nhash set (64 buckets), 4 threads:");
    let set = HashSetT::new(Stm::new(PerfectClock::new()), 64);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let set = &set;
            s.spawn(move || {
                let mut h = set.engine().register();
                let mut rng = FastRng::new(t as u64 + 7);
                for _ in 0..10_000 {
                    let key = rng.range(0, 4_096);
                    if rng.percent(60) {
                        set.insert(&mut h, key);
                    } else {
                        set.remove(&mut h, key);
                    }
                }
            });
        }
    });
    let mut h = set.engine().register();
    println!(
        "   {:>9.0} hash-ops/s, {} keys in the set",
        40_000.0 / start.elapsed().as_secs_f64(),
        set.len(&mut h)
    );
}
