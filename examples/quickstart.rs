//! Quickstart: a concurrent bank on LSA-RT.
//!
//! Demonstrates the core API — creating a runtime on a time base, creating
//! transactional variables, running transactions from multiple threads —
//! and shows the consistency guarantee: read-only audits always see the
//! invariant total while transfers run.
//!
//! Run with: `cargo run --release --example quickstart`

use lsa_rt::prelude::*;

fn main() {
    // The paper's scalable time base: a synchronized hardware clock.
    // Swap in `SharedCounter::new()` to get the classical counter-based LSA.
    let stm = Stm::new(HardwareClock::mmtimer_free());

    const ACCOUNTS: usize = 8;
    const INITIAL: i64 = 1_000;
    let accounts: Vec<_> = (0..ACCOUNTS).map(|_| stm.new_tvar(INITIAL)).collect();

    std::thread::scope(|s| {
        // Three transfer threads.
        for t in 0..3u64 {
            let stm = stm.clone();
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut thread = stm.register();
                let mut seed = t + 1;
                for _ in 0..10_000 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = (seed % 50) as i64;
                    let (a, b) = (accounts[from].clone(), accounts[to].clone());
                    thread.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - amount)?;
                        tx.write(&b, vb + amount)?;
                        Ok(())
                    });
                }
                println!("transfer thread {t}: {}", thread.stats());
            });
        }
        // One auditor thread: consistent snapshots, no validation cost.
        let stm = stm.clone();
        let accounts = accounts.clone();
        s.spawn(move || {
            let mut thread = stm.register();
            for i in 0..2_000 {
                let total = thread.atomically(|tx| {
                    let mut sum = 0;
                    for a in &accounts {
                        sum += *tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total,
                    ACCOUNTS as i64 * INITIAL,
                    "audit {i} saw a torn state!"
                );
            }
            println!("auditor: 2000 consistent snapshots, {}", thread.stats());
        });
    });

    let total: i64 = accounts.iter().map(|a| *a.snapshot_latest()).sum();
    println!(
        "final total: {total} (expected {})",
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(total, ACCOUNTS as i64 * INITIAL);
}
