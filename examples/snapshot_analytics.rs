//! Multi-version snapshots for hybrid workloads: long analytical scans
//! concurrent with a high-rate update stream.
//!
//! The motivating scenario for multi-version time-based STM (§4.3): a
//! single-version STM forces long read-only transactions to abort whenever
//! any object they read is updated mid-scan; LSA-RT's version chains let the
//! scan *finish in the past* on a consistent snapshot instead.
//!
//! Run with: `cargo run --release --example snapshot_analytics`

use lsa_rt::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

fn run(label: &str, max_versions: usize) {
    let cfg = StmConfig::multi_version(max_versions);
    let stm = Stm::with_config(HardwareClock::mmtimer_free(), cfg);
    const N: usize = 512;
    // "Metrics" table updated continuously; every update bumps two entries
    // by amounts that cancel, so every consistent snapshot sums to zero.
    let metrics: Vec<_> = (0..N).map(|_| stm.new_tvar(0i64)).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Update stream.
        for t in 0..2u64 {
            let stm = stm.clone();
            let metrics = metrics.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut th = stm.register();
                let mut seed = 0x5EED + t;
                while !stop.load(Ordering::Relaxed) {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (seed >> 33) as usize % N;
                    let j = (seed >> 13) as usize % N;
                    if i == j {
                        continue;
                    }
                    let (a, b) = (metrics[i].clone(), metrics[j].clone());
                    th.atomically(|tx| {
                        tx.modify(&a, |v| v + 7)?;
                        tx.modify(&b, |v| v - 7)
                    });
                }
            });
        }
        // Analytical scans.
        let stm2 = stm.clone();
        let metrics2 = metrics.clone();
        let stop = &stop;
        s.spawn(move || {
            let mut th = stm2.register();
            let mut scans = 0u32;
            while scans < 200 {
                let sum = th.atomically(|tx| {
                    let mut sum = 0i64;
                    for m in &metrics2 {
                        sum += *tx.read(m)?;
                    }
                    Ok(sum)
                });
                assert_eq!(sum, 0, "scan saw an inconsistent snapshot");
                scans += 1;
            }
            stop.store(true, Ordering::Relaxed);
            let st = th.stats();
            println!(
                "{label:>18}: 200 scans, {} aborts ({:.2} aborts/scan), {} extensions",
                st.total_aborts(),
                st.total_aborts() as f64 / 200.0,
                st.extensions,
            );
        });
    });
}

fn main() {
    println!("512-object scans against a continuous update stream:");
    run("single-version", 1);
    run("multi-version(8)", 8);
    println!("multi-version scans abort far less: old snapshots stay completable (S4.3).");
}
