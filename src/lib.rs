//! # lsa-rt — Time-based Transactional Memory with Scalable Time Bases
//!
//! A from-scratch Rust reproduction of the SPAA'07 paper by Riegel, Fetzer
//! and Felber: the **LSA-RT** software transactional memory — a multi-version
//! STM whose consistency reasoning is decoupled from its *time base*, so the
//! classical global commit counter can be replaced by scalable real-time
//! clocks (perfectly synchronized, or externally synchronized with bounded
//! deviation).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`engine`] ([`lsa_engine`]) — the [`TxnEngine`](lsa_engine::TxnEngine)
//!   trait family: one abstraction over every STM engine here, so workloads
//!   and experiments run on any engine × time-base combination,
//! * [`time`] ([`lsa_time`]) — timestamp algebra (Alg. 1/4/5), the
//!   commit-arbitration protocol (`acquire_commit_ts`, GV4/GV5 timestamp
//!   sharing, batched blocks) and every time base: shared counter, GV4/GV5
//!   counters, block counter, perfect clock, simulated MMTimer, externally
//!   synchronized clocks, ccNUMA-modeled counter, plus the Figure 1
//!   measurement machinery and a software clock-sync simulator,
//! * [`stm`] ([`lsa_stm`]) — the LSA-RT algorithm (Alg. 2/3): multi-version
//!   objects, visible writes, lazy snapshot extension, two-phase commit with
//!   helping, pluggable contention managers,
//! * [`baseline`] ([`lsa_baseline`]) — TL2-style and validation-based
//!   comparator STMs (§1.2), engines behind the same `TxnEngine` surface,
//! * [`workloads`] ([`lsa_workloads`]) — the §4.2 disjoint-update workload,
//!   bank, linked-list/skip-list/hash-set structures — all engine-generic,
//! * [`harness`] ([`lsa_harness`]) — figure-regenerating experiment binaries,
//!   the engine registry driving the `matrix` sweep, the open-loop
//!   `service_bench` load generator, and the Altix discrete-event model,
//! * [`service`] ([`lsa_service`]) — the async transaction-service
//!   front-end: a worker pool over any engine with bounded submission
//!   queues, futures-based completions, admission-control shedding and
//!   latency histograms — hand-rolled from `std` (offline build, no tokio).
//!
//! ## Quick start
//!
//! ```
//! use lsa_rt::prelude::*;
//!
//! // LSA-RT on the paper's scalable time base (simulated MMTimer).
//! let stm = Stm::new(HardwareClock::mmtimer_free());
//! let x = stm.new_tvar(0i64);
//! let mut thread = stm.register();
//! thread.atomically(|tx| tx.modify(&x, |v| v + 1));
//! assert_eq!(*x.snapshot_latest(), 1);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use lsa_baseline as baseline;
pub use lsa_engine as engine;
pub use lsa_harness as harness;
pub use lsa_service as service;
pub use lsa_stm as stm;
pub use lsa_time as time;
pub use lsa_workloads as workloads;

/// One-stop imports for applications.
///
/// Includes the engine-abstraction traits ([`TxnEngine`](lsa_engine::TxnEngine),
/// [`EngineHandle`](lsa_engine::EngineHandle), [`TxnOps`](lsa_engine::TxnOps))
/// so engine-generic code works out of the box. Engine-native inherent
/// methods keep taking precedence over the identically named trait methods,
/// so engine-specific code is unaffected.
pub mod prelude {
    pub use lsa_engine::{
        AbortClass, AbortReasons, EngineAbort, EngineHandle, EngineResult, EngineStats, EngineVar,
        TxnEngine, TxnOps,
    };
    pub use lsa_service::{ServiceConfig, SubmitError, TxnService};
    pub use lsa_stm::prelude::*;
    pub use lsa_time::prelude::*;
}
