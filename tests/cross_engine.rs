//! Cross-engine consistency through the `TxnEngine` abstraction: ONE generic
//! schedule runs on LSA-RT, TL2, the validation STM and NOrec, and all
//! engines must agree — single-threaded on exact final states, concurrently
//! on the preserved invariants.
//!
//! Before the engine-abstraction refactor this file repeated the same
//! transfer loop once per engine with engine-specific types; now each test is
//! a single generic function plus one line per engine. Engine names are
//! printed as each schedule runs, so `cargo test --test cross_engine --
//! --nocapture` shows exactly which engine a failure belongs to.

use lsa_rt::baseline::{NorecStm, Tl2Stm, ValidationMode, ValidationStm};
use lsa_rt::prelude::*;
use lsa_rt::time::counter::SharedCounter;
use lsa_rt::workloads::FastRng;

const N: usize = 10;

/// The deterministic transfer schedule, engine-generic: same seed, same
/// transfer sequence on every engine. Returns the final balances.
fn run_schedule<E: TxnEngine>(engine: &E, steps: usize) -> Vec<i64> {
    println!("cross-engine schedule: {}", engine.engine_name());
    let vars: Vec<EngineVar<E, i64>> = (0..N).map(|_| engine.new_var(1_000i64)).collect();
    let mut h = engine.register();
    let mut rng = FastRng::new(4242);
    for _ in 0..steps {
        let from = rng.below(N);
        let to = (from + 1 + rng.below(N - 1)) % N;
        let amount = rng.range(1, 50);
        let (a, b) = (vars[from].clone(), vars[to].clone());
        h.atomically(|tx| {
            let va = *tx.read(&a)?;
            let vb = *tx.read(&b)?;
            tx.write(&a, va - amount)?;
            tx.write(&b, vb + amount)?;
            Ok(())
        });
    }
    vars.iter().map(|v| *E::peek(v)).collect()
}

/// A deterministic sequence of transfers applied through any engine must
/// give identical balances (single-threaded: all engines are sequential).
#[test]
fn single_threaded_engines_agree() {
    const STEPS: usize = 2_000;
    let lsa = run_schedule(&Stm::new(SharedCounter::new()), STEPS);
    let lsa_rt_clock = run_schedule(&Stm::new(HardwareClock::mmtimer_free()), STEPS);
    let tl2 = run_schedule(&Tl2Stm::new(SharedCounter::new()), STEPS);
    let val_always = run_schedule(&ValidationStm::new(ValidationMode::Always), STEPS);
    let val_cc = run_schedule(&ValidationStm::new(ValidationMode::CommitCounter), STEPS);
    let norec = run_schedule(&NorecStm::new(), STEPS);

    assert_eq!(lsa, lsa_rt_clock, "LSA-RT diverged across time bases");
    assert_eq!(lsa, tl2, "LSA-RT and TL2 diverged");
    assert_eq!(lsa, val_always, "LSA-RT and validation(always) diverged");
    assert_eq!(
        lsa, val_cc,
        "LSA-RT and validation(commit-counter) diverged"
    );
    assert_eq!(lsa, norec, "LSA-RT and NOrec diverged");
    assert_eq!(lsa.iter().sum::<i64>(), N as i64 * 1_000);
}

/// Concurrent transfers through any engine preserve the bank total.
fn concurrent_invariant<E: TxnEngine>(engine: &E) {
    const ACCOUNTS: usize = 12;
    const THREADS: usize = 4;
    const STEPS: usize = 1_200;

    println!(
        "cross-engine concurrent invariant: {}",
        engine.engine_name()
    );
    let vars: Vec<EngineVar<E, i64>> = (0..ACCOUNTS).map(|_| engine.new_var(100i64)).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = engine.clone();
            let vars = vars.clone();
            s.spawn(move || {
                let mut h = engine.register();
                let mut rng = FastRng::new(t as u64 + 1);
                for _ in 0..STEPS {
                    let from = rng.below(ACCOUNTS);
                    let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
                    let (a, b) = (vars[from].clone(), vars[to].clone());
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - 1)?;
                        tx.write(&b, vb + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(
        vars.iter().map(|v| *E::peek(v)).sum::<i64>(),
        ACCOUNTS as i64 * 100,
        "total broken on {}",
        engine.engine_name()
    );
}

/// Concurrent invariant parity: each engine preserves the bank total under
/// the same thread/transfer counts.
#[test]
fn concurrent_engines_preserve_invariants() {
    concurrent_invariant(&Stm::new(SharedCounter::new()));
    concurrent_invariant(&Tl2Stm::new(SharedCounter::new()));
    concurrent_invariant(&ValidationStm::new(ValidationMode::CommitCounter));
    concurrent_invariant(&NorecStm::new());
}

/// LSA-RT on every time base agrees with the sequential expectation when
/// each thread works on private data (paper §4.2 workload shape) — the same
/// generic increment loop, driven through the engine surface.
#[test]
fn all_time_bases_agree_on_disjoint_work() {
    use lsa_rt::time::external::{ExternalClock, OffsetPolicy};
    use lsa_rt::time::numa::{NumaCounter, NumaModel};

    fn run<E: TxnEngine>(engine: E) -> u64 {
        let vars: Vec<EngineVar<E, u64>> = (0..4).map(|_| engine.new_var(0u64)).collect();
        std::thread::scope(|s| {
            for v in vars.iter() {
                let engine = engine.clone();
                let v = v.clone();
                s.spawn(move || {
                    let mut h = engine.register();
                    for _ in 0..500 {
                        h.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        vars.iter().map(|v| *E::peek(v)).sum()
    }

    assert_eq!(run(Stm::new(SharedCounter::new())), 2_000);
    assert_eq!(
        run(Stm::new(lsa_rt::time::counter::BlockCounter::default())),
        2_000
    );
    assert_eq!(run(Stm::new(PerfectClock::new())), 2_000);
    assert_eq!(run(Stm::new(HardwareClock::mmtimer_free())), 2_000);
    assert_eq!(run(Stm::new(NumaCounter::new(NumaModel::free()))), 2_000);
    assert_eq!(
        run(Stm::new(ExternalClock::with_policy(
            10_000,
            OffsetPolicy::Alternating
        ))),
        2_000
    );
    // The same loop also runs unchanged on the other engine families —
    // including TL2 on the arbitration bases LSA cannot use (the adopting
    // GV4 and the lazy GV5, both non-commit-monotonic).
    assert_eq!(run(Tl2Stm::new(SharedCounter::new())), 2_000);
    assert_eq!(
        run(Tl2Stm::new(lsa_rt::time::counter::Gv4Counter::new())),
        2_000
    );
    assert_eq!(
        run(Tl2Stm::new(lsa_rt::time::counter::Gv5Counter::new())),
        2_000
    );
    assert_eq!(run(ValidationStm::new(ValidationMode::Always)), 2_000);
    assert_eq!(run(NorecStm::new()), 2_000);
}
