//! Cross-engine consistency: the same workloads on LSA-RT, TL2 and the
//! validation STM must preserve the same invariants — and, single-threaded,
//! produce identical final states.

use lsa_rt::baseline::{Tl2Stm, ValidationMode, ValidationStm};
use lsa_rt::prelude::*;
use lsa_rt::time::counter::SharedCounter;
use lsa_rt::workloads::FastRng;

/// A deterministic sequence of transfers applied through any engine must
/// give identical balances (single-threaded: all engines are sequential).
#[test]
fn single_threaded_engines_agree() {
    const N: usize = 10;
    const STEPS: usize = 2_000;

    let run_schedule = |mut transfer: Box<dyn FnMut(usize, usize, i64)>| {
        let mut rng = FastRng::new(4242);
        for _ in 0..STEPS {
            let from = rng.below(N);
            let to = (from + 1 + rng.below(N - 1)) % N;
            let amount = rng.range(1, 50);
            transfer(from, to, amount);
        }
    };

    // LSA-RT.
    let stm = Stm::new(SharedCounter::new());
    let lsa_vars: Vec<TVar<i64, u64>> = (0..N).map(|_| stm.new_tvar(1_000)).collect();
    let mut h = stm.register();
    {
        let vars = lsa_vars.clone();
        run_schedule(Box::new(move |from, to, amount| {
            let (a, b) = (vars[from].clone(), vars[to].clone());
            h.atomically(|tx| {
                let va = *tx.read(&a)?;
                let vb = *tx.read(&b)?;
                tx.write(&a, va - amount)?;
                tx.write(&b, vb + amount)?;
                Ok(())
            });
        }));
    }
    let lsa_final: Vec<i64> = lsa_vars.iter().map(|v| *v.snapshot_latest()).collect();

    // TL2.
    let tl2 = Tl2Stm::new(SharedCounter::new());
    let tl2_vars: Vec<_> = (0..N).map(|_| tl2.new_var(1_000i64)).collect();
    let mut th = tl2.register();
    {
        let vars = tl2_vars.clone();
        run_schedule(Box::new(move |from, to, amount| {
            let (a, b) = (vars[from].clone(), vars[to].clone());
            th.atomically(|tx| {
                let va = *tx.read(&a)?;
                let vb = *tx.read(&b)?;
                tx.write(&a, va - amount)?;
                tx.write(&b, vb + amount)?;
                Ok(())
            });
        }));
    }
    let tl2_final: Vec<i64> = tl2_vars.iter().map(|v| *v.snapshot_latest()).collect();

    // Validation engine.
    let vstm = ValidationStm::new(ValidationMode::Always);
    let val_vars: Vec<_> = (0..N).map(|_| vstm.new_var(1_000i64)).collect();
    let mut vh = vstm.register();
    {
        let vars = val_vars.clone();
        run_schedule(Box::new(move |from, to, amount| {
            let (a, b) = (vars[from].clone(), vars[to].clone());
            vh.atomically(|tx| {
                let va = *tx.read(&a)?;
                let vb = *tx.read(&b)?;
                tx.write(&a, va - amount)?;
                tx.write(&b, vb + amount)?;
                Ok(())
            });
        }));
    }
    let val_final: Vec<i64> = val_vars.iter().map(|v| *v.snapshot_latest()).collect();

    assert_eq!(lsa_final, tl2_final, "LSA-RT and TL2 diverged");
    assert_eq!(lsa_final, val_final, "LSA-RT and validation STM diverged");
    assert_eq!(lsa_final.iter().sum::<i64>(), N as i64 * 1_000);
}

/// Concurrent invariant parity: each engine preserves the bank total under
/// the same thread/transfer counts.
#[test]
fn concurrent_engines_preserve_invariants() {
    const N: usize = 12;
    const THREADS: usize = 4;
    const STEPS: usize = 1_200;

    // LSA-RT.
    let stm = Stm::new(SharedCounter::new());
    let vars: Vec<TVar<i64, u64>> = (0..N).map(|_| stm.new_tvar(100)).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = stm.clone();
            let vars = vars.clone();
            s.spawn(move || {
                let mut h = stm.register();
                let mut rng = FastRng::new(t as u64 + 1);
                for _ in 0..STEPS {
                    let from = rng.below(N);
                    let to = (from + 1 + rng.below(N - 1)) % N;
                    let (a, b) = (vars[from].clone(), vars[to].clone());
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - 1)?;
                        tx.write(&b, vb + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(vars.iter().map(|v| *v.snapshot_latest()).sum::<i64>(), N as i64 * 100);

    // TL2.
    let tl2 = Tl2Stm::new(SharedCounter::new());
    let tvars: Vec<_> = (0..N).map(|_| tl2.new_var(100i64)).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tl2 = tl2.clone();
            let tvars = tvars.clone();
            s.spawn(move || {
                let mut h = tl2.register();
                let mut rng = FastRng::new(t as u64 + 1);
                for _ in 0..STEPS {
                    let from = rng.below(N);
                    let to = (from + 1 + rng.below(N - 1)) % N;
                    let (a, b) = (tvars[from].clone(), tvars[to].clone());
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - 1)?;
                        tx.write(&b, vb + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(tvars.iter().map(|v| *v.snapshot_latest()).sum::<i64>(), N as i64 * 100);

    // Validation engine (commit-counter mode).
    let vstm = std::sync::Arc::new(ValidationStm::new(ValidationMode::CommitCounter));
    let vvars: Vec<_> = (0..N).map(|_| vstm.new_var(100i64)).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let vstm = std::sync::Arc::clone(&vstm);
            let vvars = vvars.clone();
            s.spawn(move || {
                let mut h = vstm.register();
                let mut rng = FastRng::new(t as u64 + 1);
                for _ in 0..STEPS {
                    let from = rng.below(N);
                    let to = (from + 1 + rng.below(N - 1)) % N;
                    let (a, b) = (vvars[from].clone(), vvars[to].clone());
                    h.atomically(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        tx.write(&a, va - 1)?;
                        tx.write(&b, vb + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(vvars.iter().map(|v| *v.snapshot_latest()).sum::<i64>(), N as i64 * 100);
}

/// LSA-RT on every time base agrees with the sequential expectation when
/// each thread works on private data (paper §4.2 workload shape).
#[test]
fn all_time_bases_agree_on_disjoint_work() {
    use lsa_rt::time::external::{ExternalClock, OffsetPolicy};
    use lsa_rt::time::numa::{NumaCounter, NumaModel};

    fn run<B: lsa_rt::time::TimeBase>(tb: B) -> u64 {
        let stm = Stm::new(tb);
        let vars: Vec<TVar<u64, B::Ts>> = (0..4).map(|_| stm.new_tvar(0u64)).collect();
        std::thread::scope(|s| {
            for v in vars.iter() {
                let stm = stm.clone();
                let v = v.clone();
                s.spawn(move || {
                    let mut h = stm.register();
                    for _ in 0..500 {
                        h.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                });
            }
        });
        vars.iter().map(|v| *v.snapshot_latest()).sum()
    }

    assert_eq!(run(SharedCounter::new()), 2_000);
    assert_eq!(run(lsa_rt::time::counter::Tl2Counter::new()), 2_000);
    assert_eq!(run(PerfectClock::new()), 2_000);
    assert_eq!(run(HardwareClock::mmtimer_free()), 2_000);
    assert_eq!(run(NumaCounter::new(NumaModel::free())), 2_000);
    assert_eq!(
        run(ExternalClock::with_policy(10_000, OffsetPolicy::Alternating)),
        2_000
    );
}
