//! Integration tests of the `TxnEngine` abstraction itself: the
//! multithreaded bank-invariant audit on every engine, and agreement between
//! the engine-generic statistics surface and the harness's `RunOutcome`
//! totals.

use lsa_rt::baseline::{NorecStm, Tl2Stm, ValidationMode, ValidationStm};
use lsa_rt::harness::{run_steps, RunOutcome, Workload};
use lsa_rt::prelude::*;
use lsa_rt::time::counter::SharedCounter;
use lsa_rt::workloads::{BankConfig, BankWorkload, DisjointConfig, DisjointWorkload};

/// Multithreaded bank with concurrent read-only auditors: on every engine,
/// no audit may ever observe a broken total, and the quiescent total must be
/// conserved exactly.
fn bank_audit_invariant<E: TxnEngine>(engine: E) {
    const THREADS: usize = 4;
    const STEPS: u64 = 600;
    let name = engine.engine_name();
    let wl = BankWorkload::new(
        engine,
        BankConfig {
            accounts: 24,
            initial: 250,
            audit_percent: 30,
        },
    );
    let failures: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let mut w = wl.worker(t);
                s.spawn(move || {
                    for _ in 0..STEPS {
                        w.step();
                    }
                    w.audit_failures()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(failures, 0, "{name}: an audit observed a broken invariant");
    assert_eq!(
        wl.quiescent_total(),
        wl.expected_total(),
        "{name}: total not conserved"
    );
}

#[test]
fn bank_audit_invariant_lsa_rt() {
    bank_audit_invariant(Stm::new(SharedCounter::new()));
    bank_audit_invariant(Stm::new(HardwareClock::mmtimer_free()));
}

#[test]
fn bank_audit_invariant_tl2() {
    bank_audit_invariant(Tl2Stm::new(SharedCounter::new()));
}

#[test]
fn bank_audit_invariant_validation() {
    bank_audit_invariant(ValidationStm::new(ValidationMode::Always));
    bank_audit_invariant(ValidationStm::new(ValidationMode::CommitCounter));
}

#[test]
fn bank_audit_invariant_norec() {
    bank_audit_invariant(NorecStm::new());
}

/// `EngineStats` (per-worker, engine-generic) must agree with the
/// `RunOutcome` the harness aggregates, and with ground truth: on the
/// disjoint workload every step is exactly one update commit.
fn stats_agree_with_run_outcome<E: TxnEngine>(engine: E) {
    const THREADS: usize = 2;
    const STEPS: u64 = 150;
    const K: usize = 4;
    let name = engine.engine_name();
    let wl = DisjointWorkload::new(
        engine,
        THREADS,
        DisjointConfig {
            objects_per_thread: 16,
            accesses_per_tx: K,
        },
    );
    let out: RunOutcome = run_steps(THREADS, STEPS, |i| wl.worker(i));
    let expected = THREADS as u64 * STEPS;
    assert_eq!(out.steps, expected, "{name}: steps miscounted");
    assert_eq!(
        out.commits(),
        expected,
        "{name}: RunOutcome commits != steps"
    );
    assert_eq!(out.aborts(), 0, "{name}: disjoint work aborted");
    assert_eq!(
        wl.total(),
        out.commits() * K as u64,
        "{name}: committed increments don't match RunOutcome commits"
    );

    // Per-worker stats surface agrees with a hand-counted run.
    let mut w = wl.worker(0);
    for _ in 0..25 {
        w.step();
    }
    let s = w.take_stats();
    assert_eq!(
        s.commits, 25,
        "{name}: commits miscounted on the stats surface"
    );
    assert_eq!(
        s.ro_commits, 0,
        "{name}: updates misclassified as read-only"
    );
    assert_eq!(s.aborts, 0, "{name}: phantom aborts");
    assert!(s.reads >= 25 * K as u64, "{name}: reads under-counted");
    assert!(s.writes >= 25 * K as u64, "{name}: writes under-counted");
    assert_eq!(
        w.stats(),
        EngineStats::default(),
        "{name}: take_stats did not reset"
    );
}

#[test]
fn stats_agree_with_run_outcome_all_engines() {
    stats_agree_with_run_outcome(Stm::new(SharedCounter::new()));
    stats_agree_with_run_outcome(Tl2Stm::new(SharedCounter::new()));
    stats_agree_with_run_outcome(ValidationStm::new(ValidationMode::CommitCounter));
    stats_agree_with_run_outcome(NorecStm::new());
}

/// The registry's engine-generic runner reports the same totals the
/// workload's own accounting implies, for every registered engine.
#[test]
fn registry_outcomes_match_workload_accounting() {
    use std::time::Duration;
    let wl = Workload::Disjoint(DisjointConfig {
        objects_per_thread: 8,
        accesses_per_tx: 2,
    });
    for entry in lsa_rt::harness::default_registry() {
        // run_workload itself asserts total == commits * k after the run.
        let out = entry.run(&wl, 2, Duration::from_millis(5));
        assert!(out.commits() > 0, "{} made no progress", entry.label());
    }
}
