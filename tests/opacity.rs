//! Offline serializability/opacity checking of committed histories.
//!
//! Two layers:
//!
//! 1. **Engine-generic** (every engine in the harness registry, NOrec
//!    included): the conformance suite of [`lsa_engine::conformance`] —
//!    value-chain serializability, audit-snapshot consistency and the
//!    differential models — runs per registry entry through its
//!    `run_conformance` hook. Commit timestamps are engine-private, so the
//!    generic check uses the per-object *value chain* as the witness of
//!    commit order instead.
//!
//! 2. **LSA-specific**: every committed update transaction records
//!    `(commit_time, per-object: value-read, value-written)`, and the log is
//!    checked against the commit-time order the time base defines:
//!
//!    * per object, commit times are strictly increasing (no two conflicting
//!      commits share a timestamp — §2.3 allows equal commit times only for
//!      non-conflicting transactions);
//!    * per object, the value each transaction *read* equals the value the
//!      previous committer (in commit-time order) *wrote* — i.e. the
//!      committed history is exactly the sequential history at commit-time
//!      order.

use lsa_rt::prelude::*;
use lsa_rt::time::counter::SharedCounter;
use lsa_rt::time::hardware::HardwareClock;
use lsa_rt::time::perfect::PerfectClock;
use lsa_rt::time::TimeBase;
use std::sync::Mutex;

#[derive(Clone, Copy, Debug)]
struct Record {
    ct: u64,
    object: usize,
    read: u64,
    wrote: u64,
}

fn run_and_check<B: TimeBase<Ts = u64>>(tb: B, threads: usize, increments: usize) {
    const OBJECTS: usize = 8;
    let stm = Stm::new(tb);
    let vars: Vec<TVar<u64, u64>> = (0..OBJECTS).map(|_| stm.new_tvar(0u64)).collect();
    let log: Mutex<Vec<Record>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = stm.clone();
            let vars = vars.clone();
            let log = &log;
            s.spawn(move || {
                let mut h = stm.register();
                let mut local = Vec::with_capacity(increments);
                let mut seed = t as u64 + 1;
                for _ in 0..increments {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let object = (seed >> 33) as usize % OBJECTS;
                    let var = vars[object].clone();
                    let (read, wrote) = h.atomically(|tx| {
                        let read = *tx.read(&var)?;
                        tx.write(&var, read + 1)?;
                        Ok((read, read + 1))
                    });
                    let ct = h.last_commit_time().expect("update txn has a CT");
                    local.push(Record {
                        ct,
                        object,
                        read,
                        wrote,
                    });
                }
                log.lock().unwrap().extend(local);
            });
        }
    });

    let mut log = log.into_inner().unwrap();
    assert_eq!(log.len(), threads * increments);

    // Check per object: strictly increasing commit times, and each read
    // matches the previous write — the committed history equals the
    // sequential history in commit-time order.
    log.sort_by_key(|r| (r.object, r.ct));
    for (object, var) in vars.iter().enumerate() {
        let mut expected = 0u64;
        let mut last_ct = 0u64;
        for r in log.iter().filter(|r| r.object == object) {
            assert!(
                r.ct > last_ct,
                "conflicting commits share or invert commit times: {} then {}",
                last_ct,
                r.ct
            );
            last_ct = r.ct;
            assert_eq!(
                r.read, expected,
                "object {object}: transaction at ct={} read {} but the \
                 commit-time-ordered history says {}",
                r.ct, r.read, expected
            );
            assert_eq!(r.wrote, r.read + 1);
            expected = r.wrote;
        }
        assert_eq!(*var.snapshot_latest(), expected);
    }
}

/// The engine-generic conformance suite over EVERY engine in the registry —
/// not just LSA-RT with hand-picked time bases. A new registry entry is
/// covered automatically (the `lsa-sharded` rows included, whose round-robin
/// routing spreads the suite's variables across shards, so the value-chain
/// and audit-snapshot checks cover cross-shard commits); run with
/// `--nocapture` to see per-engine progress.
#[test]
fn conformance_suite_passes_on_every_registry_engine() {
    for entry in lsa_rt::harness::default_registry() {
        println!("conformance: {}", entry.label());
        entry.run_conformance();
    }
}

/// The LSA-specific commit-time serializability check, on the sharded
/// runtime: every transaction increments TWO adjacent objects, which the
/// round-robin routing places on different shards, so every committed
/// update exercised the cross-shard protocol — and the committed history
/// must still equal the sequential history at commit-time order, per
/// object, with strictly increasing commit times for conflicting commits.
fn run_and_check_sharded<B: TimeBase<Ts = u64>>(
    tb: B,
    shards: usize,
    threads: usize,
    increments: usize,
) {
    const OBJECTS: usize = 8;
    let stm = ShardedStm::new(tb, shards);
    let vars: Vec<TVar<u64, u64>> = (0..OBJECTS).map(|_| stm.new_tvar(0u64)).collect();
    // Round-robin routing: adjacent objects live on different shards.
    for (i, var) in vars.iter().enumerate() {
        assert_eq!(
            lsa_rt::stm::sharded::shard_of_id(var.id()),
            i % shards,
            "routing must spread adjacent objects across shards"
        );
    }
    let log: Mutex<Vec<Record>> = Mutex::new(Vec::new());
    let cross_total: Mutex<u64> = Mutex::new(0);

    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = stm.clone();
            let vars = vars.clone();
            let log = &log;
            let cross_total = &cross_total;
            s.spawn(move || {
                let mut h = stm.register();
                let mut local = Vec::with_capacity(2 * increments);
                let mut seed = t as u64 + 1;
                for _ in 0..increments {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (seed >> 33) as usize % OBJECTS;
                    let j = (i + 1) % OBJECTS;
                    let (a, b) = (vars[i].clone(), vars[j].clone());
                    let (ra, rb) = h.atomically(|tx| {
                        let ra = *tx.read(&a)?;
                        let rb = *tx.read(&b)?;
                        tx.write(&a, ra + 1)?;
                        tx.write(&b, rb + 1)?;
                        Ok((ra, rb))
                    });
                    let ct = h.last_commit_time().expect("update txn has a CT");
                    local.push(Record {
                        ct,
                        object: i,
                        read: ra,
                        wrote: ra + 1,
                    });
                    local.push(Record {
                        ct,
                        object: j,
                        read: rb,
                        wrote: rb + 1,
                    });
                }
                *cross_total.lock().unwrap() += h.stats().cross_shard_commits;
                log.lock().unwrap().extend(local);
            });
        }
    });

    assert_eq!(
        *cross_total.lock().unwrap(),
        (threads * increments) as u64,
        "every transaction spans two shards and must count as cross-shard"
    );

    let mut log = log.into_inner().unwrap();
    assert_eq!(log.len(), 2 * threads * increments);
    log.sort_by_key(|r| (r.object, r.ct));
    for (object, var) in vars.iter().enumerate() {
        let mut expected = 0u64;
        let mut last_ct = 0u64;
        for r in log.iter().filter(|r| r.object == object) {
            assert!(
                r.ct > last_ct,
                "conflicting cross-shard commits share or invert commit \
                 times: {} then {}",
                last_ct,
                r.ct
            );
            last_ct = r.ct;
            assert_eq!(
                r.read, expected,
                "object {object}: transaction at ct={} read {} but the \
                 commit-time-ordered history says {}",
                r.ct, r.read, expected
            );
            expected = r.wrote;
        }
        assert_eq!(*var.snapshot_latest(), expected);
    }
}

#[test]
fn sharded_committed_history_is_serializable_counter() {
    run_and_check_sharded(SharedCounter::new(), 8, 4, 1_000);
}

#[test]
fn sharded_committed_history_is_serializable_block() {
    use lsa_rt::time::counter::BlockCounter;
    run_and_check_sharded(BlockCounter::new(16), 4, 4, 1_000);
}

#[test]
fn committed_history_is_serializable_counter() {
    run_and_check(SharedCounter::new(), 4, 2_000);
}

#[test]
fn committed_history_is_serializable_perfect_clock() {
    run_and_check(PerfectClock::new(), 4, 2_000);
}

#[test]
fn committed_history_is_serializable_mmtimer() {
    run_and_check(HardwareClock::mmtimer_free(), 4, 2_000);
}

/// The same property through the external-clock ensemble: commit times are
/// `ExtTimestamp`s; conflicting commits on one object must be strictly
/// ordered by the *guaranteed* relation (their gaps must exceed the masked
/// uncertainty), and values must chain.
#[test]
fn committed_history_is_serializable_external_clock() {
    use lsa_rt::time::external::{ExtTimestamp, ExternalClock, OffsetPolicy};
    use lsa_rt::time::Timestamp as _;

    const OBJECTS: usize = 4;
    let tb = ExternalClock::with_policy(20_000, OffsetPolicy::Alternating);
    let stm = Stm::new(tb);
    let vars: Vec<TVar<u64, ExtTimestamp>> = (0..OBJECTS).map(|_| stm.new_tvar(0u64)).collect();
    let log: Mutex<Vec<(ExtTimestamp, usize, u64, u64)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for t in 0..4usize {
            let stm = stm.clone();
            let vars = vars.clone();
            let log = &log;
            s.spawn(move || {
                let mut h = stm.register();
                let mut local = Vec::new();
                let mut seed = t as u64 + 9;
                for _ in 0..800 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let object = (seed >> 33) as usize % OBJECTS;
                    let var = vars[object].clone();
                    let (read, wrote) = h.atomically(|tx| {
                        let read = *tx.read(&var)?;
                        tx.write(&var, read + 1)?;
                        Ok((read, read + 1))
                    });
                    local.push((h.last_commit_time().unwrap(), object, read, wrote));
                }
                log.lock().unwrap().extend(local);
            });
        }
    });

    let mut log = log.into_inner().unwrap();
    // ExtTimestamp has no total order; sort by the per-object value chain
    // instead (read value defines the position), then verify commit times
    // respect the guaranteed order along each chain.
    log.sort_by_key(|&(_, object, read, _)| (object, read));
    for (object, var) in vars.iter().enumerate() {
        let entries: Vec<_> = log.iter().filter(|e| e.1 == object).collect();
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.2, i as u64, "value chain must be gapless");
            assert_eq!(e.3, i as u64 + 1);
        }
        for pair in entries.windows(2) {
            let (ct_a, ct_b) = (pair[0].0, pair[1].0);
            assert!(
                !ct_a.ge(ct_b) || ct_a == ct_b,
                "later chain position must not be guaranteed-earlier: {ct_a:?} vs {ct_b:?}"
            );
        }
        assert_eq!(*var.snapshot_latest(), entries.len() as u64);
    }
}
