//! Registry-wide service-driven conformance: every engine × time-base cell
//! must commit a serializable history when driven through the `lsa-service`
//! worker pool instead of dedicated per-thread handles.
//!
//! This is the serving-layer counterpart of `tests/opacity.rs`: requests
//! from many client threads cross bounded queues, multiplex onto few
//! long-lived worker handles (shard-affinely on the sharded cells), and the
//! value-chain / audit-snapshot witnesses plus the service's own accounting
//! (`completed == submitted`) are asserted end to end.

use lsa_harness::registry::default_registry;

/// Every registry cell passes the service-driven suite. One test so the
/// engine name prints per cell under `--nocapture` for triage.
#[test]
fn every_registry_cell_passes_service_conformance() {
    for entry in default_registry() {
        println!("service conformance: {}", entry.label());
        entry.run_service_conformance();
    }
}

/// The sharded cells again, explicitly: shard-affine routing must not
/// change the serializability verdict (requests hinting one shard all land
/// on one worker; cross-shard audits interleave with them).
#[test]
fn sharded_cells_pass_service_conformance_shard_affinely() {
    let reg = default_registry();
    let sharded: Vec<_> = reg.iter().filter(|e| e.engine == "lsa-sharded").collect();
    assert!(sharded.len() >= 3, "sharded rows missing from the registry");
    for entry in sharded {
        println!("service conformance (sharded): {}", entry.label());
        entry.run_service_conformance();
    }
}
