//! Model-based testing: the STM against a reference `HashMap`, and random
//! transaction shapes (property-based).

use lsa_rt::prelude::*;
use lsa_rt::time::counter::SharedCounter;
use lsa_rt::time::hardware::HardwareClock;
use proptest::prelude::*;
use std::collections::HashMap;

/// One operation of a generated transaction body.
#[derive(Clone, Debug)]
enum Op {
    Read(usize),
    Write(usize, u64),
    Modify(usize, u64),
}

fn op_strategy(n_vars: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_vars).prop_map(Op::Read),
        ((0..n_vars), any::<u64>()).prop_map(|(i, v)| Op::Write(i, v % 1000)),
        ((0..n_vars), any::<u64>()).prop_map(|(i, v)| Op::Modify(i, v % 10)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially executed random transactions leave the STM in exactly
    /// the state of the reference model, and every intra-transaction read
    /// observes model semantics (read-own-write included).
    #[test]
    fn sequential_txns_match_reference_model(
        txns in prop::collection::vec(prop::collection::vec(op_strategy(6), 1..12), 1..24)
    ) {
        let stm = Stm::new(SharedCounter::new());
        let vars: Vec<TVar<u64, u64>> = (0..6).map(|_| stm.new_tvar(0u64)).collect();
        let mut model: HashMap<usize, u64> = (0..6).map(|i| (i, 0u64)).collect();
        let mut h = stm.register();

        for body in &txns {
            // Apply to the STM transactionally.
            let mut scratch = model.clone();
            h.atomically(|tx| {
                scratch = model.clone(); // body may re-run after an abort
                for op in body {
                    match *op {
                        Op::Read(i) => {
                            let got = *tx.read(&vars[i])?;
                            assert_eq!(got, scratch[&i], "read diverged from model");
                        }
                        Op::Write(i, v) => {
                            tx.write(&vars[i], v)?;
                            scratch.insert(i, v);
                        }
                        Op::Modify(i, d) => {
                            tx.modify(&vars[i], |x| x + d)?;
                            *scratch.get_mut(&i).unwrap() += d;
                        }
                    }
                }
                Ok(())
            });
            model = scratch;
        }

        for (i, var) in vars.iter().enumerate() {
            prop_assert_eq!(*var.snapshot_latest(), model[&i]);
        }
    }

    /// Aborted transactions leave no trace: run a body, then abort it
    /// explicitly — state must be unchanged.
    #[test]
    fn aborted_txns_are_invisible(
        body in prop::collection::vec(op_strategy(4), 1..10),
        commit_value in 0u64..1000
    ) {
        let stm = Stm::new(HardwareClock::mmtimer_free());
        let vars: Vec<TVar<u64, u64>> = (0..4).map(|_| stm.new_tvar(7u64)).collect();
        let mut h = stm.register();

        let mut attempts = 0;
        let r: TxResult<()> = h.try_atomically(1, |tx| {
            attempts += 1;
            for op in &body {
                match *op {
                    Op::Read(i) => { tx.read(&vars[i])?; }
                    Op::Write(i, v) => { tx.write(&vars[i], v)?; }
                    Op::Modify(i, d) => { tx.modify(&vars[i], |x| x + d)?; }
                }
            }
            Err(tx.abort_retry())
        });
        prop_assert!(r.is_err());
        prop_assert_eq!(attempts, 1);
        for var in &vars {
            prop_assert_eq!(*var.snapshot_latest(), 7u64, "abort leaked a write");
        }

        // And a subsequent committed write works normally.
        h.atomically(|tx| tx.write(&vars[0], commit_value));
        prop_assert_eq!(*vars[0].snapshot_latest(), commit_value);
    }

    /// Version-chain depth never exceeds the configured maximum.
    #[test]
    fn version_chains_are_bounded(updates in 1usize..40, max_versions in 1usize..6) {
        let stm = Stm::with_config(
            SharedCounter::new(),
            StmConfig::multi_version(max_versions),
        );
        let v = stm.new_tvar(0u64);
        let mut h = stm.register();
        for _ in 0..updates {
            h.atomically(|tx| tx.modify(&v, |x| x + 1));
        }
        prop_assert!(v.version_count() <= max_versions);
        prop_assert_eq!(*v.snapshot_latest(), updates as u64);
    }
}

/// A long random mixed run with a fixed seed, as a deterministic regression
/// anchor next to the proptests.
#[test]
fn deterministic_mixed_run() {
    let stm = Stm::new(SharedCounter::new());
    let a = stm.new_tvar(0i64);
    let b = stm.new_tvar(100i64);
    let mut h = stm.register();
    let mut seed = 0xC0FFEEu64;
    for _ in 0..5_000 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        match seed % 4 {
            0 => h.atomically(|tx| tx.modify(&a, |v| v + 1)),
            1 => h.atomically(|tx| tx.modify(&b, |v| v - 1)),
            2 => {
                h.atomically(|tx| {
                    let va = *tx.read(&a)?;
                    tx.write(&b, va)?;
                    Ok(())
                });
            }
            _ => {
                let _ = h.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
            }
        }
    }
    assert_eq!(h.stats().total_commits(), 5_000);
    assert_eq!(h.stats().total_aborts(), 0, "single thread never aborts");
}
