//! Model-based testing: engines against a reference `HashMap`, with random
//! transaction shapes (property-based).
//!
//! The differential checkers themselves live in [`lsa_engine::conformance`]
//! (engine-generic, so every engine inherits them); this file drives them
//! with proptest-generated inputs across ALL FOUR engine families — LSA-RT,
//! TL2, the validation STM and NOrec — plus LSA-specific properties that
//! need native APIs (explicit aborts, version-chain bounds).

use lsa_rt::baseline::{NorecStm, Tl2Stm, ValidationMode, ValidationStm};
use lsa_rt::engine::conformance::{
    concurrent_adds_match_model, sequential_ops_match_model, ModelOp,
};
use lsa_rt::prelude::*;
use lsa_rt::time::counter::SharedCounter;
use lsa_rt::time::hardware::HardwareClock;
use proptest::prelude::*;
use std::collections::HashMap;

const N_VARS: usize = 6;

fn op_strategy(n_vars: usize) -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0..n_vars).prop_map(ModelOp::Read),
        ((0..n_vars), any::<u64>()).prop_map(|(i, v)| ModelOp::Write(i, v % 1000)),
        ((0..n_vars), any::<u64>()).prop_map(|(i, v)| ModelOp::Add(i, v % 10)),
    ]
}

/// One generated input, exercised on every engine family: sequentially
/// executed random transactions must leave each engine in exactly the state
/// of the reference model, and every intra-transaction read must observe
/// model semantics (read-own-write included).
fn sequential_on_all_engines(txns: &[Vec<ModelOp>]) {
    sequential_ops_match_model(&Stm::new(SharedCounter::new()), N_VARS, txns);
    sequential_ops_match_model(&Stm::new(HardwareClock::mmtimer_free()), N_VARS, txns);
    // Four shards over six variables: every generated transaction that
    // touches two variables is a cross-shard transaction.
    sequential_ops_match_model(&ShardedStm::new(SharedCounter::new(), 4), N_VARS, txns);
    sequential_ops_match_model(&Tl2Stm::new(SharedCounter::new()), N_VARS, txns);
    sequential_ops_match_model(&ValidationStm::new(ValidationMode::Always), N_VARS, txns);
    sequential_ops_match_model(
        &ValidationStm::new(ValidationMode::CommitCounter),
        N_VARS,
        txns,
    );
    sequential_ops_match_model(&NorecStm::new(), N_VARS, txns);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential differential model vs the `HashMap` reference, on LSA-RT,
    /// TL2, both validation modes and NOrec.
    #[test]
    fn sequential_txns_match_reference_model_on_every_engine(
        txns in prop::collection::vec(prop::collection::vec(op_strategy(N_VARS), 1..12), 1..24)
    ) {
        sequential_on_all_engines(&txns);
    }

    /// Concurrent differential model: per-thread lists of commutative adds
    /// applied concurrently must produce exactly the model's final state on
    /// every engine (adds commute, so the reference result is
    /// order-independent).
    #[test]
    fn concurrent_adds_match_reference_model_on_every_engine(
        adds in prop::collection::vec(
            prop::collection::vec(((0..4usize), 1u64..5), 1..60),
            2..4,
        )
    ) {
        concurrent_adds_match_model(&Stm::new(SharedCounter::new()), 4, &adds);
        concurrent_adds_match_model(&ShardedStm::new(SharedCounter::new(), 4), 4, &adds);
        concurrent_adds_match_model(&Tl2Stm::new(SharedCounter::new()), 4, &adds);
        concurrent_adds_match_model(
            &ValidationStm::new(ValidationMode::CommitCounter), 4, &adds,
        );
        concurrent_adds_match_model(&NorecStm::new(), 4, &adds);
    }

    /// Aborted transactions leave no trace: run a body, then abort it
    /// explicitly — state must be unchanged. (LSA-specific: `try_atomically`
    /// and explicit retry aborts are native API.)
    #[test]
    fn aborted_txns_are_invisible(
        body in prop::collection::vec(op_strategy(4), 1..10),
        commit_value in 0u64..1000
    ) {
        let stm = Stm::new(HardwareClock::mmtimer_free());
        let vars: Vec<TVar<u64, u64>> = (0..4).map(|_| stm.new_tvar(7u64)).collect();
        let mut h = stm.register();

        let mut attempts = 0;
        let r: TxResult<()> = h.try_atomically(1, |tx| {
            attempts += 1;
            for op in &body {
                match *op {
                    ModelOp::Read(i) => { tx.read(&vars[i])?; }
                    ModelOp::Write(i, v) => { tx.write(&vars[i], v)?; }
                    ModelOp::Add(i, d) => { tx.modify(&vars[i], |x| x + d)?; }
                }
            }
            Err(tx.abort_retry())
        });
        prop_assert!(r.is_err());
        prop_assert_eq!(attempts, 1);
        for var in &vars {
            prop_assert_eq!(*var.snapshot_latest(), 7u64, "abort leaked a write");
        }

        // And a subsequent committed write works normally.
        h.atomically(|tx| tx.write(&vars[0], commit_value));
        prop_assert_eq!(*vars[0].snapshot_latest(), commit_value);
    }

    /// Version-chain depth never exceeds the configured maximum
    /// (LSA-specific: multi-version configuration is native API).
    #[test]
    fn version_chains_are_bounded(updates in 1usize..40, max_versions in 1usize..6) {
        let stm = Stm::with_config(
            SharedCounter::new(),
            StmConfig::multi_version(max_versions),
        );
        let v = stm.new_tvar(0u64);
        let mut h = stm.register();
        for _ in 0..updates {
            h.atomically(|tx| tx.modify(&v, |x| x + 1));
        }
        prop_assert!(v.version_count() <= max_versions);
        prop_assert_eq!(*v.snapshot_latest(), updates as u64);
    }
}

/// A long random mixed run with a fixed seed, as a deterministic regression
/// anchor next to the proptests — on every engine family, through the
/// generic surface.
fn deterministic_mixed_run_on<E: TxnEngine>(engine: &E) {
    let name = engine.engine_name();
    let a = engine.new_var(0i64);
    let b = engine.new_var(100i64);
    let mut h = engine.register();
    let mut seed = 0xC0FFEEu64;
    let mut model = (0i64, 100i64);
    for _ in 0..5_000 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        match seed % 4 {
            0 => {
                h.atomically(|tx| tx.modify(&a, |v| v + 1));
                model.0 += 1;
            }
            1 => {
                h.atomically(|tx| tx.modify(&b, |v| v - 1));
                model.1 -= 1;
            }
            2 => {
                h.atomically(|tx| {
                    let va = *tx.read(&a)?;
                    tx.write(&b, va)?;
                    Ok(())
                });
                model.1 = model.0;
            }
            _ => {
                let sum = h.atomically(|tx| Ok(*tx.read(&a)? + *tx.read(&b)?));
                assert_eq!(sum, model.0 + model.1, "{name}: read-only sum diverged");
            }
        }
    }
    assert_eq!(*E::peek(&a), model.0, "{name}: final a diverged");
    assert_eq!(*E::peek(&b), model.1, "{name}: final b diverged");
    let s = h.engine_stats();
    assert_eq!(s.total_commits(), 5_000, "{name}: commit count");
    assert_eq!(s.aborts, 0, "{name}: single thread never aborts");
}

#[test]
fn deterministic_mixed_run_every_engine() {
    deterministic_mixed_run_on(&Stm::new(SharedCounter::new()));
    // `a` and `b` land on different shards (round-robin), so the mixed run
    // drives the cross-shard commit path deterministically.
    deterministic_mixed_run_on(&ShardedStm::new(SharedCounter::new(), 2));
    deterministic_mixed_run_on(&Tl2Stm::new(SharedCounter::new()));
    deterministic_mixed_run_on(&ValidationStm::new(ValidationMode::Always));
    deterministic_mixed_run_on(&ValidationStm::new(ValidationMode::CommitCounter));
    deterministic_mixed_run_on(&NorecStm::new());
}

/// The sequential model is also exercised once with a hand-written worst
/// case: overwrites of the same variable inside one transaction, reads after
/// writes, and adds on top of pending writes — the read-own-write edge cases
/// a random generator hits only occasionally.
#[test]
fn read_own_write_edge_cases_every_engine() {
    let txns: Vec<Vec<ModelOp>> = vec![
        vec![
            ModelOp::Write(0, 5),
            ModelOp::Read(0),
            ModelOp::Write(0, 9),
            ModelOp::Read(0),
            ModelOp::Add(0, 1),
            ModelOp::Read(0),
        ],
        vec![ModelOp::Read(0), ModelOp::Add(0, 7), ModelOp::Read(0)],
        vec![
            ModelOp::Write(1, 3),
            ModelOp::Add(1, 4),
            ModelOp::Write(2, 8),
            ModelOp::Read(1),
            ModelOp::Read(2),
        ],
    ];
    sequential_on_all_engines(&txns);

    // Sanity: the model the checkers compare against is itself correct.
    let mut model: HashMap<usize, u64> = (0..N_VARS).map(|i| (i, 0)).collect();
    for body in &txns {
        for op in body {
            match *op {
                ModelOp::Read(_) => {}
                ModelOp::Write(i, v) => {
                    model.insert(i, v);
                }
                ModelOp::Add(i, d) => *model.get_mut(&i).unwrap() += d,
            }
        }
    }
    assert_eq!(model[&0], 17);
    assert_eq!(model[&1], 7);
    assert_eq!(model[&2], 8);
}
