//! Property-based tests of the timestamp algebra (§2.1, Algorithms 1 and 5).
//!
//! The paper states the laws informally; here they are machine-checked over
//! both timestamp domains:
//!
//! * `t2 ≽ t1  ⟹  ¬(t1 ≿ t2)` and `t2 ≿ t1 ⟹ ¬(t1 ≽ t2)`,
//! * `ge` is reflexive on same-clock timestamps and transitive,
//! * `max` semantics: `t3 ≽ max(t1,t2) ⟹ t3 ≽ t1 ∧ t3 ≽ t2`,
//! * `min` semantics: `min(t1,t2) ≽ t3 ⟹ t1 ≽ t3 ∧ t2 ≽ t3`,
//! * external-clock comparisons mask the deviation conservatively.

use lsa_rt::time::external::{ClockId, ExtTimestamp};
use lsa_rt::time::Timestamp;
use proptest::prelude::*;

fn ext_ts() -> impl Strategy<Value = ExtTimestamp> {
    // Timestamps around a large epoch with bounded deviations; cid 0..4 plus
    // the undefined marker.
    (
        (1u64 << 40)..(1u64 << 40) + 1_000_000,
        prop_oneof![Just(u32::MAX), 0u32..4],
        0u64..10_000,
    )
        .prop_map(|(ts, cid, dev)| ExtTimestamp::new(ts, ClockId(cid), dev))
}

proptest! {
    // ---- u64 (totally ordered time bases) ----

    #[test]
    fn u64_paper_implications(t1: u64, t2: u64) {
        if t2.ge(t1) {
            prop_assert!(!t1.possibly_later(t2));
        }
        if t2.possibly_later(t1) {
            prop_assert!(!t1.ge(t2));
        }
    }

    #[test]
    fn u64_ge_total(t1: u64, t2: u64) {
        // In a totally ordered base, at least one direction always holds.
        prop_assert!(t1.ge(t2) || t2.ge(t1));
    }

    #[test]
    fn u64_join_meet_bounds(t1: u64, t2: u64, t3: u64) {
        let j = t1.join(t2);
        prop_assert!(j.ge(t1) && j.ge(t2));
        if t3.ge(j) {
            prop_assert!(t3.ge(t1) && t3.ge(t2));
        }
        let m = t1.meet(t2);
        prop_assert!(t1.ge(m) && t2.ge(m));
        if m.ge(t3) {
            prop_assert!(t1.ge(t3) && t2.ge(t3));
        }
    }

    #[test]
    fn u64_prior_is_predecessor(t in 1u64..u64::MAX) {
        prop_assert_eq!(t.prior(), t - 1);
        prop_assert!(t.possibly_later(t.prior()));
    }

    // ---- ExtTimestamp (Algorithm 5) ----

    #[test]
    fn ext_paper_implications(t1 in ext_ts(), t2 in ext_ts()) {
        if t2.ge(t1) {
            prop_assert!(!t1.possibly_later(t2));
        }
        if t2.possibly_later(t1) {
            prop_assert!(!t1.ge(t2));
        }
    }

    #[test]
    fn ext_ge_reflexive_same_clock(t in ext_ts()) {
        if !t.cid.is_undefined() {
            prop_assert!(t.ge(t));
        }
    }

    #[test]
    fn ext_ge_transitive(a in ext_ts(), b in ext_ts(), c in ext_ts()) {
        if a.ge(b) && b.ge(c) {
            prop_assert!(a.ge(c), "a={a:?} b={b:?} c={c:?}");
        }
    }

    #[test]
    fn ext_join_dominates_both(t1 in ext_ts(), t2 in ext_ts(), t3 in ext_ts()) {
        let j = t1.join(t2);
        if t3.ge(j) {
            prop_assert!(t3.ge(t1), "t3={t3:?} j={j:?} t1={t1:?}");
            prop_assert!(t3.ge(t2), "t3={t3:?} j={j:?} t2={t2:?}");
        }
    }

    #[test]
    fn ext_meet_dominated_by_both(t1 in ext_ts(), t2 in ext_ts(), t3 in ext_ts()) {
        let m = t1.meet(t2);
        if m.ge(t3) {
            prop_assert!(t1.ge(t3), "m={m:?} t1={t1:?} t3={t3:?}");
            prop_assert!(t2.ge(t3), "m={m:?} t2={t2:?} t3={t3:?}");
        }
    }

    #[test]
    fn ext_cross_clock_requires_gap(off in 0u64..30_000) {
        // Two readings from different clocks, both with dev = 10 µs: only a
        // gap larger than dev1 + dev2 orders them.
        let dev = 10_000u64;
        let base = 1u64 << 40;
        let t1 = ExtTimestamp::new(base + off, ClockId(1), dev);
        let t2 = ExtTimestamp::new(base, ClockId(2), dev);
        if off >= 2 * dev {
            prop_assert!(t1.ge(t2));
        } else {
            prop_assert!(!t1.ge(t2), "within the uncertainty window");
            prop_assert!(t1.possibly_later(t2) && t2.possibly_later(t1));
        }
    }

    #[test]
    fn ext_origin_below_everything(t in ext_ts()) {
        let origin = ExtTimestamp::origin();
        prop_assert!(t.ge(origin));
        prop_assert!(!origin.ge(t));
    }

    #[test]
    fn u64_origin_below_everything(t in 1u64..) {
        prop_assert!(t.ge(u64::origin()));
        prop_assert!(!u64::origin().ge(t));
    }
}
